(* The multiprogramming battery: the identity oracle (single process,
   infinite quantum, no kernel == Simulator.run bit for bit), fast-path
   vs reference-loop equivalence under real time-slicing, exact integer
   attribution (per-process + system = aggregate), scheduler and
   switch-cost behaviour, probe/sampler integration including a sampler
   window boundary landing exactly on a context switch, and the
   deterministic mix fuzz generator with its spec-level shrinking. *)

module Mp = Wayplace.Mp
module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Runner = Wayplace.Sim.Runner
module Simulator = Wayplace.Sim.Simulator
module Sampler = Wayplace.Obs.Sampler
module Mibench = Wayplace.Workloads.Mibench
module Progen = Wayplace.Check.Progen

let wp16 = Config.Way_placement { area_bytes = 16 * 1024 }

let all_schemes =
  [
    Config.Baseline;
    wp16;
    Config.Way_memoization;
    Config.Way_prediction;
    Config.Filter_cache { l0_bytes = 512 };
  ]

(* A small three-process mix that still exercises contention. *)
let trio_specs =
  [ Mibench.tiny; Mibench.find "crc"; Mibench.find "adpcm_loop" ]

let trio () = Mp.Mix.of_specs trio_specs

let quantum q = { Mp.Machine.default_options with Mp.Machine.quantum_cycles = q }

let check_stats_equal what a b =
  Alcotest.(check bool) what true (Stats.equal a b)

(* --- the identity oracle -------------------------------------------- *)

let test_identity_oracle () =
  let prep = Runner.prepare Mibench.tiny in
  List.iter
    (fun scheme ->
      let config = Config.xscale scheme in
      let solo = Runner.run_scheme prep config in
      let mix = Mp.Mix.of_specs [ Mibench.tiny ] in
      let r = Mp.Machine.run ~config ~options:Mp.Machine.oracle_options mix in
      check_stats_equal
        (Config.scheme_name scheme ^ ": mp aggregate == Simulator.run")
        solo r.Mp.Machine.aggregate;
      Alcotest.(check int)
        (Config.scheme_name scheme ^ ": no switches")
        0 r.Mp.Machine.switches;
      Alcotest.(check int)
        (Config.scheme_name scheme ^ ": no kernel runs")
        0 r.Mp.Machine.kernel_runs)
    all_schemes

(* --- fast path vs reference loop under time-slicing ----------------- *)

let check_same_result what (a : Mp.Machine.result) (b : Mp.Machine.result) =
  check_stats_equal (what ^ ": aggregate") a.Mp.Machine.aggregate
    b.Mp.Machine.aggregate;
  check_stats_equal (what ^ ": system") a.Mp.Machine.system b.Mp.Machine.system;
  Alcotest.(check int)
    (what ^ ": same process count")
    (List.length a.Mp.Machine.processes)
    (List.length b.Mp.Machine.processes);
  List.iter2
    (fun (pa : Mp.Machine.process_result) (pb : Mp.Machine.process_result) ->
      Alcotest.(check string) (what ^ ": process order") pa.Mp.Machine.pr_name
        pb.Mp.Machine.pr_name;
      Alcotest.(check int)
        (what ^ ": " ^ pa.Mp.Machine.pr_name ^ " dispatches")
        pa.Mp.Machine.pr_dispatches pb.Mp.Machine.pr_dispatches;
      check_stats_equal
        (what ^ ": " ^ pa.Mp.Machine.pr_name ^ " stats")
        pa.Mp.Machine.pr_stats pb.Mp.Machine.pr_stats)
    a.Mp.Machine.processes b.Mp.Machine.processes;
  Alcotest.(check int) (what ^ ": switches") a.Mp.Machine.switches
    b.Mp.Machine.switches;
  Alcotest.(check int) (what ^ ": kernel runs") a.Mp.Machine.kernel_runs
    b.Mp.Machine.kernel_runs;
  Alcotest.(check int) (what ^ ": timer fires") a.Mp.Machine.timer_fires
    b.Mp.Machine.timer_fires

let test_fast_equals_reference () =
  List.iter
    (fun (scheme, q) ->
      let config = Config.xscale scheme in
      let options = quantum q in
      let fast = Mp.Machine.run ~config ~options (trio ()) in
      let reference =
        Mp.Machine.run ~reference_only:true ~config ~options (trio ())
      in
      check_same_result
        (Printf.sprintf "%s q=%d" (Config.scheme_name scheme) q)
        fast reference;
      Alcotest.(check bool)
        (Printf.sprintf "%s q=%d: the machine actually switched"
           (Config.scheme_name scheme) q)
        true
        (fast.Mp.Machine.switches > 0))
    [ (Config.Baseline, 3_000); (wp16, 3_000); (wp16, 25_000) ]

let test_fast_equals_reference_drowsy () =
  let config =
    Config.with_drowsy
      (Config.with_leakage (Config.xscale wp16) true)
      (Some 2048)
  in
  List.iter
    (fun drowsy_policy ->
      let options =
        { (quantum 3_000) with Mp.Machine.drowsy_policy = drowsy_policy }
      in
      let fast = Mp.Machine.run ~config ~options (trio ()) in
      let reference =
        Mp.Machine.run ~reference_only:true ~config ~options (trio ())
      in
      check_same_result "drowsy mp" fast reference)
    [ Mp.Machine.Drowsy_shared; Mp.Machine.Drowsy_flush ]

(* --- exact integer attribution -------------------------------------- *)

let check_conservation what (r : Mp.Machine.result) =
  let agg = Stats.snapshot_ints r.Mp.Machine.aggregate in
  let sum = Array.make (Array.length agg) 0 in
  let add s =
    Array.iteri (fun i v -> sum.(i) <- sum.(i) + v) (Stats.snapshot_ints s)
  in
  List.iter (fun p -> add p.Mp.Machine.pr_stats) r.Mp.Machine.processes;
  add r.Mp.Machine.system;
  Alcotest.(check bool)
    (what ^ ": per-process + system == aggregate, integer by integer")
    true (sum = agg)

let test_attribution_conserves () =
  List.iter
    (fun (label, config, options) ->
      check_conservation label (Mp.Machine.run ~config ~options (trio ())))
    [
      ("baseline q=3k", Config.xscale Config.Baseline, quantum 3_000);
      ("wp16 q=3k", Config.xscale wp16, quantum 3_000);
      ( "wp16 drowsy flush",
        Config.with_drowsy
          (Config.with_leakage (Config.xscale wp16) true)
          (Some 2048),
        {
          (quantum 3_000) with
          Mp.Machine.drowsy_policy = Mp.Machine.Drowsy_flush;
          btb_policy = Mp.Machine.Btb_flush;
        } );
      ("wp16 infinite", Config.xscale wp16, quantum 0);
    ]

(* --- scheduler and switch-cost behaviour ---------------------------- *)

let test_infinite_quantum_runs_to_completion () =
  let r =
    Mp.Machine.run ~config:(Config.xscale wp16) ~options:(quantum 0) (trio ())
  in
  (* Each process runs to completion; only the hand-overs switch. *)
  Alcotest.(check int) "switches = processes - 1" 2 r.Mp.Machine.switches;
  Alcotest.(check int) "no timer fires" 0 r.Mp.Machine.timer_fires;
  List.iter
    (fun (p : Mp.Machine.process_result) ->
      Alcotest.(check int)
        (p.Mp.Machine.pr_name ^ " dispatched once")
        1 p.Mp.Machine.pr_dispatches)
    r.Mp.Machine.processes

let test_shorter_quantum_more_switches () =
  let run q =
    Mp.Machine.run ~config:(Config.xscale wp16) ~options:(quantum q) (trio ())
  in
  let short = run 2_000 and long = run 20_000 in
  Alcotest.(check bool) "2k quantum switches more than 20k" true
    (short.Mp.Machine.switches > long.Mp.Machine.switches);
  Alcotest.(check bool) "switch rate metric agrees" true
    (Mp.Machine.switches_per_million short
    > Mp.Machine.switches_per_million long)

let test_kernel_cost () =
  let run kernel =
    Mp.Machine.run ~config:(Config.xscale wp16)
      ~options:{ (quantum 3_000) with Mp.Machine.kernel }
      (trio ())
  in
  let with_k = run true and without_k = run false in
  Alcotest.(check bool) "kernel runs counted" true
    (with_k.Mp.Machine.kernel_runs > 0);
  Alcotest.(check int) "kernel off runs nothing" 0
    without_k.Mp.Machine.kernel_runs;
  Alcotest.(check bool) "kernel costs system cycles" true
    (with_k.Mp.Machine.system.Stats.cycles
    > without_k.Mp.Machine.system.Stats.cycles);
  (* The kernel fetches through the shared I-TLB, so it must be the
     system account that pays, not any user process. *)
  Alcotest.(check bool) "system account fetched instructions" true
    (with_k.Mp.Machine.system.Stats.retired_instrs > 0)

let switch_markers windows =
  List.concat_map
    (fun (w : Sampler.window) ->
      List.filter_map
        (function
          | Sampler.Switch { cycle; next } -> Some (cycle, next)
          | Sampler.Resize _ | Sampler.Flush _ -> None)
        w.Sampler.markers)
    windows

let probed_run ~window_cycles ~config ~options mix =
  let s = Sampler.create ~window_cycles () in
  let r = Mp.Machine.run ~probe:(Sampler.probe s) ~config ~options mix in
  (r, Sampler.finish s)

let test_priority_dispatch_order () =
  let mix =
    List.map2
      (fun p priority -> { p with Mp.Mix.priority = priority })
      (trio ()) [ 0; 2; 1 ]
  in
  let options = { (quantum 0) with Mp.Machine.sched = Mp.Machine.Priority } in
  let r, windows =
    probed_run ~window_cycles:8192 ~config:(Config.xscale wp16) ~options mix
  in
  Alcotest.(check int) "two hand-overs" 2 r.Mp.Machine.switches;
  (* Highest static priority first: index 1 (prio 2) is dispatched
     first without a switch marker, then 2 (prio 1), then 0 (prio 0). *)
  Alcotest.(check (list int)) "dispatch order follows priority" [ 2; 0 ]
    (List.map snd (switch_markers windows))

(* --- probe and sampler integration ---------------------------------- *)

let test_probe_leaves_result_identical () =
  let config = Config.xscale wp16 and options = quantum 3_000 in
  let fast = Mp.Machine.run ~config ~options (trio ()) in
  let probed, windows = probed_run ~window_cycles:1024 ~config ~options (trio ()) in
  check_same_result "probed mp" fast probed;
  (* Window sums reproduce the aggregate exactly. *)
  let retired =
    List.fold_left
      (fun acc (w : Sampler.window) -> acc + w.Sampler.retired)
      0 windows
  in
  Alcotest.(check int) "window retired sum"
    fast.Mp.Machine.aggregate.Stats.retired_instrs retired;
  let last = List.nth windows (List.length windows - 1) in
  Alcotest.(check int) "windows telescope to the machine's cycles"
    fast.Mp.Machine.aggregate.Stats.cycles last.Sampler.end_cycle;
  (* One switch marker per counted switch, in machine order. *)
  let markers = switch_markers windows in
  Alcotest.(check int) "one marker per switch" fast.Mp.Machine.switches
    (List.length markers);
  let cycles = List.map fst markers in
  Alcotest.(check bool) "marker cycles non-decreasing" true
    (List.sort compare cycles = cycles);
  List.iter
    (fun (_, next) ->
      Alcotest.(check bool) "marker names a mix index" true
        (next >= 0 && next < List.length (trio ())))
    markers

let test_switch_on_window_boundary () =
  let config = Config.xscale wp16 and options = quantum 3_000 in
  (* First pass: find the cycle of the first context switch (marker
     cycles are exact regardless of the window size). *)
  let _, coarse = probed_run ~window_cycles:4096 ~config ~options (trio ()) in
  let first_switch =
    match switch_markers coarse with
    | (c, _) :: _ -> c
    | [] -> Alcotest.fail "expected at least one switch"
  in
  Alcotest.(check bool) "switch happens after cycle 0" true (first_switch > 0);
  (* Second pass: make the sampler window end exactly on that cycle.
     The marker must land inside a window that spans it, the chain must
     stay dense and contiguous, and no switch may be lost or doubled. *)
  let r, windows =
    probed_run ~window_cycles:first_switch ~config ~options (trio ())
  in
  let rec check_chain prev_end index = function
    | [] -> ()
    | (w : Sampler.window) :: rest ->
        Alcotest.(check int) "dense indices" index w.Sampler.index;
        Alcotest.(check int) "contiguous windows" prev_end w.Sampler.start_cycle;
        List.iter
          (fun m ->
            let cycle = Sampler.marker_cycle m in
            Alcotest.(check bool) "marker within its window" true
              (w.Sampler.start_cycle <= cycle && cycle <= w.Sampler.end_cycle))
          w.Sampler.markers;
        check_chain w.Sampler.end_cycle (index + 1) rest
  in
  check_chain 0 0 windows;
  Alcotest.(check bool) "a window boundary falls on the switch cycle" true
    (List.exists
       (fun (w : Sampler.window) -> w.Sampler.end_cycle = first_switch)
       windows);
  Alcotest.(check int) "every switch still has exactly one marker"
    r.Mp.Machine.switches
    (List.length (switch_markers windows))

(* --- mixes ----------------------------------------------------------- *)

let test_mix_coverage () =
  let mix = trio () in
  Alcotest.(check (list bool)) "all placed" [ true; true; true ]
    (List.map (fun p -> p.Mp.Mix.placed) mix);
  Alcotest.(check (list bool)) "half places even indices"
    [ true; false; true ]
    (List.map
       (fun p -> p.Mp.Mix.placed)
       (Mp.Mix.apply_coverage Mp.Mix.Half_placed mix));
  Alcotest.(check (list bool)) "none strips every flag"
    [ false; false; false ]
    (List.map
       (fun p -> p.Mp.Mix.placed)
       (Mp.Mix.apply_coverage Mp.Mix.None_placed mix));
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Mp.Mix.coverage_name c ^ " round-trips")
        true
        (Mp.Mix.coverage_of_string (Mp.Mix.coverage_name c) = Ok c))
    [ Mp.Mix.All_placed; Mp.Mix.Half_placed; Mp.Mix.None_placed ]

let test_mix_validation () =
  (match Mp.Mix.validate [] with
  | Ok () -> Alcotest.fail "empty mix accepted"
  | Error msg ->
      Alcotest.(check bool) "diagnostic" true (String.length msg > 0));
  (match Mp.Mix.of_names [ "crc"; "no_such_benchmark" ] with
  | Ok _ -> Alcotest.fail "unknown benchmark accepted"
  | Error msg ->
      Alcotest.(check bool) "diagnostic not empty" true (String.length msg > 0));
  match Mp.Mix.of_names ~coverage:Mp.Mix.Half_placed [ "crc"; "sha" ] with
  | Error msg -> Alcotest.failf "of_names failed: %s" msg
  | Ok mix ->
      Alcotest.(check (list string)) "mix order follows names" [ "crc"; "sha" ]
        (List.map (fun p -> p.Mp.Mix.pname) mix);
      Alcotest.(check (list bool)) "coverage applied" [ true; false ]
        (List.map (fun p -> p.Mp.Mix.placed) mix)

(* --- the deterministic mix fuzz generator ---------------------------- *)

let test_progen_mix_deterministic () =
  let a = Progen.mix_of_seed 42 and b = Progen.mix_of_seed 42 in
  Alcotest.(check bool) "same seed, same mix" true (a = b);
  Alcotest.(check bool) "mix validates" true (Mp.Mix.validate a = Ok ());
  let n = List.length a in
  Alcotest.(check bool) "2..4 processes" true (n >= 2 && n <= 4);
  Alcotest.(check bool) "different seed, different mix" true
    (Progen.mix_of_seed 43 <> a)

let test_progen_mix_shrinking () =
  let mix = Progen.mix_of_seed 42 in
  let size = Progen.mix_size mix in
  let candidates = Progen.mix_shrink_candidates mix in
  Alcotest.(check bool) "candidates exist" true (candidates <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "every candidate strictly smaller" true
        (Progen.mix_size c < size))
    candidates;
  (* A predicate that only needs one process keeps shrinking until a
     single process remains. *)
  let minimal = Progen.minimize_mix ~failing:(fun m -> m <> []) mix in
  Alcotest.(check int) "fully minimised" 1 (List.length minimal);
  Alcotest.(check bool) "minimal case still fails" true (minimal <> [])

let test_progen_mix_runs () =
  (* The fuzz generator's output must actually run and conserve. *)
  let mix = Progen.mix_of_seed 7 in
  let r =
    Mp.Machine.run ~config:(Config.xscale wp16) ~options:(quantum 5_000) mix
  in
  check_conservation "random mix" r;
  Alcotest.(check int) "every process accounted"
    (List.length mix)
    (List.length r.Mp.Machine.processes)

(* --- snapshot cache across quanta and address spaces ----------------- *)

module Snapshot_cache = Wayplace.Sim.Snapshot_cache
module Steady_state = Wayplace.Sim.Steady_state
module Fetch_engine = Wayplace.Sim.Fetch_engine

let test_shootdown_fingerprint_misses () =
  (* The boundary fingerprint covers the I-TLB, so an iteration
     converged with a warm TLB can never serve the boundary right
     after an address-space switch's shootdown: the post-flush
     fingerprint differs, and by key construction the lookup MISSES. *)
  let config = Config.xscale wp16 in
  let engine = Fetch_engine.create config ~code_base:Simulator.code_base in
  let stats = Wayplace.Sim.Stats.create () in
  List.iter
    (fun a -> ignore (Fetch_engine.fetch engine stats a))
    [
      Simulator.code_base;
      Simulator.code_base + 4096;
      Simulator.code_base + 8192;
    ];
  let fp_of () =
    let b = Buffer.create 64 in
    Fetch_engine.fingerprint engine ~now:stats.Wayplace.Sim.Stats.fetches
      ~add:(fun x -> Buffer.add_string b (string_of_int x ^ ","));
    Buffer.contents b
  in
  let warm = fp_of () in
  let cache = Snapshot_cache.create () in
  let to_words s =
    Array.of_list
      (List.filter_map int_of_string_opt (String.split_on_char ',' s))
  in
  let warm_fp = to_words warm in
  let key fp =
    Snapshot_cache.key ~scope:"mp-test" ~period:2 ~ids:[| 1; 2 |] ~fp
      ~fp_len:(Array.length fp)
  in
  Snapshot_cache.add cache ~key:(key warm_fp)
    {
      Snapshot_cache.e_fp = Array.copy warm_fp;
      e_ints = [||];
      e_charges = [||];
      e_lens = [||];
      e_awake = [||];
      e_fetches = 0;
      e_cycles = 1;
      e_instrs = 1;
    };
  Alcotest.(check bool)
    "warm fingerprint hits its own entry" true
    (Snapshot_cache.find cache ~key:(key warm_fp) ~fp:warm_fp
       ~fp_len:(Array.length warm_fp)
    <> None);
  Fetch_engine.flush_tlb engine;
  let cold = fp_of () in
  Alcotest.(check bool) "shootdown changes the fingerprint" false
    (String.equal warm cold);
  let cold_fp = to_words cold in
  Alcotest.(check bool)
    "post-shootdown boundary misses" true
    (Snapshot_cache.find cache ~key:(key cold_fp) ~fp:cold_fp
       ~fp_len:(Array.length cold_fp)
    = None)

let test_snapshot_cache_mp_identity () =
  (* One cache shared across every quantum of a time-sliced mix (and
     across whole runs, as the sweep and the daemon share it): results
     must stay bit-identical to the cache-less machine, cold and
     warm. *)
  let config = Config.xscale wp16 in
  let options = quantum 3_000 in
  let plain = Mp.Machine.run ~config ~options (trio ()) in
  let cache = Snapshot_cache.create () in
  let report = Steady_state.create_report () in
  let cached =
    Mp.Machine.run ~snapshot_cache:cache ~ff_report:report ~config ~options
      (trio ())
  in
  check_same_result "mp with snapshot cache" plain cached;
  Alcotest.(check bool)
    "converged regions published" true
    (report.Steady_state.cache_inserts > 0);
  let report2 = Steady_state.create_report () in
  let warm =
    Mp.Machine.run ~snapshot_cache:cache ~ff_report:report2 ~config ~options
      (trio ())
  in
  check_same_result "mp over a warm cache" plain warm;
  Alcotest.(check bool)
    "warm re-run hits" true
    (report2.Steady_state.cache_hits > 0)

let test_snapshot_cache_reentry_hits () =
  (* A single process re-dispatched by the timer keeps its address
     space — no shootdown — so a hot loop crossing the quantum
     boundary re-enters in the exact converged state and hits the
     entry published in an earlier quantum. *)
  let config = Config.xscale wp16 in
  let options = quantum 3_000 in
  let mix = Mp.Mix.of_specs [ Mibench.find "crc_loop" ] in
  let plain = Mp.Machine.run ~config ~options mix in
  let cache = Snapshot_cache.create () in
  let report = Steady_state.create_report () in
  let cached =
    Mp.Machine.run ~snapshot_cache:cache ~ff_report:report ~config ~options mix
  in
  check_same_result "single-process sliced loop" plain cached;
  Alcotest.(check bool)
    "cross-quantum re-entry hits" true
    (report.Steady_state.cache_hits > 0)

let () =
  Alcotest.run "mp"
    [
      ( "oracle",
        [
          Alcotest.test_case "identity vs Simulator.run" `Quick
            test_identity_oracle;
          Alcotest.test_case "fast path == reference loop" `Quick
            test_fast_equals_reference;
          Alcotest.test_case "fast path == reference loop (drowsy)" `Quick
            test_fast_equals_reference_drowsy;
          Alcotest.test_case "attribution conserves" `Quick
            test_attribution_conserves;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "infinite quantum" `Quick
            test_infinite_quantum_runs_to_completion;
          Alcotest.test_case "quantum vs switch rate" `Quick
            test_shorter_quantum_more_switches;
          Alcotest.test_case "kernel cost" `Quick test_kernel_cost;
          Alcotest.test_case "priority dispatch order" `Quick
            test_priority_dispatch_order;
        ] );
      ( "observability",
        [
          Alcotest.test_case "probe leaves result identical" `Quick
            test_probe_leaves_result_identical;
          Alcotest.test_case "switch on a window boundary" `Quick
            test_switch_on_window_boundary;
        ] );
      ( "snapshot-cache",
        [
          Alcotest.test_case "TLB shootdown forces a miss" `Quick
            test_shootdown_fingerprint_misses;
          Alcotest.test_case "bit-identity, cold and warm" `Quick
            test_snapshot_cache_mp_identity;
          Alcotest.test_case "cross-quantum re-entry hits" `Quick
            test_snapshot_cache_reentry_hits;
        ] );
      ( "mix",
        [
          Alcotest.test_case "coverage" `Quick test_mix_coverage;
          Alcotest.test_case "validation" `Quick test_mix_validation;
        ] );
      ( "progen",
        [
          Alcotest.test_case "deterministic" `Quick
            test_progen_mix_deterministic;
          Alcotest.test_case "shrinking" `Quick test_progen_mix_shrinking;
          Alcotest.test_case "random mix runs" `Quick test_progen_mix_runs;
        ] );
    ]
