(* Tests for the static verifier: finding registry, well-formedness
   lint over hand-crafted bad binaries, the placement-contract checker,
   walker-accurate flow edges, the abstract I-cache must/may analysis
   and the static-vs-dynamic soundness cross-check. *)

module Isa = Wayplace.Isa
module Icfg = Wayplace.Cfg.Icfg
module Edge = Wayplace.Cfg.Edge
module Binary_layout = Wayplace.Layout.Binary_layout
module Binary_image = Wayplace.Layout.Binary_image
module Geometry = Wayplace.Cache.Geometry
module Simulator = Wayplace.Sim.Simulator
module Finding = Wayplace.Lint.Finding
module Wf_lint = Wayplace.Lint.Wf_lint
module Contract = Wayplace.Lint.Contract
module Flow = Wayplace.Lint.Flow
module Abstract_icache = Wayplace.Lint.Abstract_icache
module Soundness = Wayplace.Lint.Soundness
module Spec = Wayplace.Workloads.Spec
module Codegen = Wayplace.Workloads.Codegen
module Tracer = Wayplace.Workloads.Tracer

let alu = Isa.Instr.alu Isa.Opcode.Add
let branch = Isa.Instr.branch
let jump = Isa.Instr.jump
let call = Isa.Instr.call
let ret = Isa.Instr.return
let base = Simulator.code_base

let codes findings = List.map (fun (f : Finding.t) -> f.Finding.code) findings

let count code findings =
  List.length (List.filter (fun (f : Finding.t) -> f.code = code) findings)

let check_codes name expected findings =
  Alcotest.(check (list string)) name expected
    (List.sort compare (codes findings))

(* A spec for hand-built programs; only consulted for fields the
   simulator needs (no loads/stores in the kernels below). *)
let dummy_spec name : Spec.t =
  {
    name;
    seed = 1;
    num_funcs = 1;
    blocks_per_func_min = 1;
    blocks_per_func_max = 8;
    instrs_per_block_min = 1;
    instrs_per_block_max = 8;
    max_loop_depth = 1;
    avg_loop_trips = 4;
    hot_func_fraction = 1.0;
    hot_call_bias = 0.5;
    if_taken_bias = 0.5;
    mem_ratio = 0.0;
    mac_ratio = 0.0;
    data_working_set_bytes = 1024;
    trace_blocks_large = 100;
    trace_blocks_small = 50;
  }

let program_of name graph : Codegen.t =
  {
    spec = dummy_spec name;
    graph;
    taken_prob = Array.make (Icfg.num_blocks graph) 0.5;
    hot_funcs = Array.make (Icfg.num_funcs graph) true;
  }

let original_layout graph = Wayplace.original_layout graph

(* --- Finding registry and exit codes --- *)

let test_registry () =
  let codes = List.map (fun (c, _, _) -> c) Finding.registry in
  Alcotest.(check int) "codes unique" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun c ->
      match Finding.describe c with
      | Some d -> Alcotest.(check bool) (c ^ " described") true (d <> "")
      | None -> Alcotest.failf "%s has no description" c)
    codes;
  Alcotest.(check (option string)) "unknown code" None (Finding.describe "XX999")

let test_finding_v_unregistered () =
  match Finding.v ~code:"XX999" "nope" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_exit_codes () =
  let warning = Finding.v ~code:"WF006" "w" in
  let error = Finding.v ~code:"WF003" "e" in
  let info = Finding.v ~code:"CT004" "i" in
  Alcotest.(check int) "empty" 0 (Finding.exit_code []);
  Alcotest.(check int) "info only" 0 (Finding.exit_code [ info ]);
  Alcotest.(check int) "warning lax" 0 (Finding.exit_code [ warning ]);
  Alcotest.(check int) "warning strict" 2
    (Finding.exit_code ~strict:true [ warning; info ]);
  Alcotest.(check int) "error" 3 (Finding.exit_code [ warning; error ]);
  Alcotest.(check int) "error strict" 3
    (Finding.exit_code ~strict:true [ error ])

let test_severity_order () =
  let w = Finding.v ~code:"WF006" "w" in
  let e = Finding.v ~code:"WF003" "e" in
  Alcotest.(check bool) "errors first" true (Finding.compare e w < 0);
  Alcotest.(check (option string)) "max severity" (Some "error")
    (Option.map Finding.severity_name (Finding.max_severity [ w; e ]))

(* --- Well-formedness: hand-crafted placement tables --- *)

let entry block start size_bytes : Wf_lint.entry =
  { block; start; size_bytes }

let test_wf_unaligned () =
  let findings =
    Wf_lint.check_table ~base:(base + 1) ~code_size:8 [| entry 0 (base + 1) 8 |]
  in
  check_codes "unaligned start" [ "WF002" ] findings

let test_wf_overlap () =
  let findings =
    Wf_lint.check_table ~base ~code_size:20
      [| entry 0 base 16; entry 1 (base + 12) 8 |]
  in
  check_codes "overlapping placement" [ "WF003" ] findings

let test_wf_gap () =
  let findings =
    Wf_lint.check_table ~base ~code_size:32
      [| entry 0 base 16; entry 1 (base + 24) 8 |]
  in
  check_codes "gap between blocks" [ "WF004" ] findings

let test_wf_size_mismatch () =
  let findings =
    Wf_lint.check_table ~base ~code_size:24 [| entry 0 base 16 |]
  in
  check_codes "size mismatch" [ "WF009" ] findings

let test_wf_fallthrough_order () =
  let b = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func b ~name:"main" in
  let a = Icfg.Builder.add_block b ~func:f0 [| alu |] in
  let c = Icfg.Builder.add_block b ~func:f0 [| ret |] in
  Icfg.Builder.add_edge b ~src:a ~dst:c Edge.Fallthrough;
  let graph = Icfg.Builder.finish b in
  let findings =
    Wf_lint.check_fallthrough graph [| entry a base 4; entry c (base + 12) 4 |]
  in
  check_codes "fallthrough not adjacent" [ "WF005" ] findings

(* --- Well-formedness: graph checks --- *)

let test_wf_unreachable () =
  let b = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func b ~name:"main" in
  let a = Icfg.Builder.add_block b ~func:f0 [| jump |] in
  let dead = Icfg.Builder.add_block b ~func:f0 [| ret |] in
  Icfg.Builder.add_edge b ~src:a ~dst:a Edge.Taken;
  let graph = Icfg.Builder.finish b in
  let findings = Wf_lint.check_graph graph in
  check_codes "unreachable block" [ "WF006" ] findings;
  Alcotest.(check (option int)) "points at the dead block" (Some dead)
    (List.nth findings 0).Finding.block

let test_wf_no_return () =
  let b = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func b ~name:"main" in
  let f1 = Icfg.Builder.add_func b ~name:"spin" in
  let a = Icfg.Builder.add_block b ~func:f0 [| call |] in
  let c = Icfg.Builder.add_block b ~func:f0 [| ret |] in
  let l = Icfg.Builder.add_block b ~func:f1 [| jump |] in
  Icfg.Builder.add_edge b ~src:a ~dst:l Edge.Call_to;
  Icfg.Builder.add_edge b ~src:a ~dst:c Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:l ~dst:l Edge.Taken;
  let graph = Icfg.Builder.finish b in
  let findings = Wf_lint.check_graph graph in
  (* The callee never returns, so the continuation is also dead. *)
  Alcotest.(check int) "no-return callee" 1 (count "WF008" findings);
  Alcotest.(check int) "dead continuation" 1 (count "WF006" findings);
  Alcotest.(check int) "nothing else" 2 (List.length findings)

let test_wf_cross_function_edge () =
  let b = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func b ~name:"main" in
  let f1 = Icfg.Builder.add_func b ~name:"other" in
  let a = Icfg.Builder.add_block b ~func:f0 [| alu |] in
  let l = Icfg.Builder.add_block b ~func:f1 [| ret |] in
  Icfg.Builder.add_edge b ~src:a ~dst:l Edge.Fallthrough;
  let graph = Icfg.Builder.finish b in
  check_codes "cross-function fallthrough" [ "WF012" ]
    (Wf_lint.check_graph graph)

(* --- A small thrashing kernel: five blocks, one 16-byte line each.

     a (4 alu) -ft-> b (4 alu) -ft-> d (4 alu) -ft-> e (3 alu, branch)
     e -taken-> a, e -ft-> f (ret)

   On a 32 B direct-mapped cache with 16 B lines (2 sets), set 0 holds
   the lines of a, d and f and set 1 those of b and e: every line is
   evicted before its next use, so every access is a guaranteed miss. *)

let thrash_kernel () =
  let bld = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func bld ~name:"main" in
  let a = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; alu |] in
  let b = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; alu |] in
  let d = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; alu |] in
  let e = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; branch |] in
  let f = Icfg.Builder.add_block bld ~func:f0 [| ret |] in
  Icfg.Builder.add_edge bld ~src:a ~dst:b Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:b ~dst:d Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:d ~dst:e Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:e ~dst:a Edge.Taken;
  Icfg.Builder.add_edge bld ~src:e ~dst:f Edge.Fallthrough;
  let graph = Icfg.Builder.finish bld in
  (graph, original_layout graph, (a, b, d, e, f))

let thrash_geometry = Geometry.make ~size_bytes:32 ~assoc:1 ~line_bytes:16

(* Two loop passes, an exit, one restart and a final pass:
   every adjacent pair is a walker edge of the kernel. *)
let thrash_trace (a, b, d, e, f) : Tracer.trace =
  { blocks = [| a; b; d; e; a; b; d; e; f; a; b; d; e; f |];
    dynamic_instrs = 50;
    restarts = 1 }

let test_wf_clean_kernel () =
  let graph, layout, _ = thrash_kernel () in
  Alcotest.(check (list string)) "no findings" []
    (codes (Wf_lint.check graph layout))

(* --- Well-formedness: patched binary images --- *)

let patched_image graph layout ~offset word =
  let image = Binary_image.emit graph layout in
  Bytes.set_int32_le image offset word;
  image

(* e's branch is the 16th instruction word (offset 0x3c). *)
let branch_offset = 0x3c

let test_wf_stale_link_field () =
  let graph, layout, _ = thrash_kernel () in
  let word =
    Isa.Encode.instruction_word branch ~pc:(base + branch_offset)
      ~target:(Some (base + 4))
  in
  let image = patched_image graph layout ~offset:branch_offset word in
  check_codes "stale link field" [ "WF010" ]
    (Wf_lint.check_image graph layout image)

let test_wf_target_out_of_range () =
  let graph, layout, _ = thrash_kernel () in
  let word =
    Isa.Encode.instruction_word branch ~pc:(base + branch_offset)
      ~target:(Some (base + 0x8000))
  in
  let image = patched_image graph layout ~offset:branch_offset word in
  check_codes "out-of-range branch" [ "WF001" ]
    (Wf_lint.check_image graph layout image)

let test_wf_undecodable () =
  let graph, layout, _ = thrash_kernel () in
  let image = patched_image graph layout ~offset:0 0xFC000000l in
  check_codes "undecodable word" [ "WF011" ]
    (Wf_lint.check_image graph layout image)

let test_wf_instr_mismatch () =
  let graph, layout, _ = thrash_kernel () in
  let word = Isa.Encode.instruction_word Isa.Instr.mac ~pc:base ~target:None in
  let image = patched_image graph layout ~offset:0 word in
  check_codes "image disagrees with CFG" [ "WF013" ]
    (Wf_lint.check_image graph layout image)

(* --- Placement contract --- *)

let xscale_icache = (Wayplace.Sim.Config.xscale Wayplace.Sim.Config.Baseline).icache

let params geometry ~page ~area : Contract.params =
  { geometry; page_bytes = page; area_bytes = area; code_base = base }

let test_ct_clean () =
  let graph, layout, _ = thrash_kernel () in
  Alcotest.(check (list string)) "no findings" []
    (codes (Contract.check graph layout (params xscale_icache ~page:1024 ~area:2048)))

let test_ct_area_not_page_multiple () =
  let graph, layout, _ = thrash_kernel () in
  check_codes "area not a page multiple" [ "CT001" ]
    (Contract.check graph layout (params xscale_icache ~page:1024 ~area:1536))

let test_ct_stale_tlb_bit () =
  (* An 8 B page with 16 B lines puts the WP-bit flip mid-line: the
     line at 0x10010 has pages with disagreeing WP bits, and block b
     straddles the boundary. *)
  let graph, layout, _ = thrash_kernel () in
  let findings =
    Contract.check graph layout (params thrash_geometry ~page:8 ~area:24)
  in
  Alcotest.(check int) "line spans the WP boundary" 1 (count "CT002" findings);
  Alcotest.(check int) "block straddles the boundary" 1 (count "CT003" findings);
  Alcotest.(check int) "nothing else" 2 (List.length findings)

let single_loop_block_graph n_instrs =
  let bld = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func bld ~name:"main" in
  let body = Array.append (Array.make (n_instrs - 1) alu) [| jump |] in
  let a = Icfg.Builder.add_block bld ~func:f0 body in
  Icfg.Builder.add_edge bld ~src:a ~dst:a Edge.Taken;
  Icfg.Builder.finish bld

let test_ct_block_spans_ways () =
  (* 32 B / 2-way / 16 B lines: the way span is 16 B, so a 32 B block
     inside the area necessarily spans two designated ways. *)
  let graph = single_loop_block_graph 8 in
  let layout = original_layout graph in
  let geometry = Geometry.make ~size_bytes:32 ~assoc:2 ~line_bytes:16 in
  check_codes "block split across ways" [ "CT004" ]
    (Contract.check graph layout (params geometry ~page:8 ~area:32))

let test_ct_slot_competition () =
  (* Three lines in a 2-way area: tags 0x1000, 0x1001, 0x1002 designate
     ways 0, 1, 0 — two area lines compete for (set 0, way 0). *)
  let graph = single_loop_block_graph 12 in
  let layout = original_layout graph in
  let geometry = Geometry.make ~size_bytes:32 ~assoc:2 ~line_bytes:16 in
  let findings = Contract.check graph layout (params geometry ~page:16 ~area:48) in
  Alcotest.(check int) "slot competition" 1 (count "CT005" findings);
  Alcotest.(check int) "spanning block (info)" 1 (count "CT004" findings);
  Alcotest.(check int) "nothing else" 2 (List.length findings)

let test_ct_base_mismatch () =
  let bld = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func bld ~name:"main" in
  let a = Icfg.Builder.add_block bld ~func:f0 [| ret |] in
  ignore a;
  let graph = Icfg.Builder.finish bld in
  let layout =
    Binary_layout.of_order graph ~base:0x20000 [| 0 |]
  in
  check_codes "layout base off contract" [ "CT006" ]
    (Contract.check graph layout (params xscale_icache ~page:1024 ~area:1024))

let test_ct_bad_page_size () =
  let graph, layout, _ = thrash_kernel () in
  check_codes "page size not a power of two" [ "CT007" ]
    (Contract.check graph layout (params xscale_icache ~page:1000 ~area:2000))

(* --- Reserved kernel area (CT008/CT009) --- *)

let kernel_base = Wayplace.Mp.Kernel.base

let test_ct_reserved_clean () =
  let graph, layout, _ = thrash_kernel () in
  (* user code at code_base, well above the reserved window *)
  Alcotest.(check (list string)) "user layout clear of the kernel" []
    (codes
       (Contract.check_reserved graph layout ~kernel_base
          ~kernel_area_bytes:1024 ~role:`User))

let test_ct_reserved_user_overlap () =
  (* craft a bad binary: lay the user program out on top of the
     reserved kernel window *)
  let graph, _, _ = thrash_kernel () in
  let bad = Binary_layout.of_order graph ~base:kernel_base [| 0; 1; 2; 3; 4 |] in
  let findings =
    Contract.check_reserved graph bad ~kernel_base ~kernel_area_bytes:1024
      ~role:`User
  in
  Alcotest.(check int) "every block trips CT008" 5 (count "CT008" findings);
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check string) "severity" "error"
        (Finding.severity_name f.Finding.severity))
    findings

let test_ct_reserved_kernel_escape () =
  (* the kernel itself placed at code_base instead of its window *)
  let graph, layout, _ = thrash_kernel () in
  let findings =
    Contract.check_reserved graph layout ~kernel_base ~kernel_area_bytes:1024
      ~role:`Kernel
  in
  Alcotest.(check int) "every block trips CT009" 5 (count "CT009" findings)

let test_ct_reserved_kernel_clean () =
  let kernel = Wayplace.Mp.Kernel.prepare ~page_bytes:1024 in
  let graph = kernel.Wayplace.Mp.Kernel.program.Codegen.graph in
  Alcotest.(check (list string)) "real kernel stays inside its window" []
    (codes
       (Contract.check_reserved graph kernel.Wayplace.Mp.Kernel.layout
          ~kernel_base ~kernel_area_bytes:kernel.Wayplace.Mp.Kernel.area_bytes
          ~role:`Kernel))

let test_ct_reserved_bad_area () =
  let graph, layout, _ = thrash_kernel () in
  match
    Contract.check_reserved graph layout ~kernel_base ~kernel_area_bytes:0
      ~role:`User
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- CLI exit codes: a failed report write must not mask severity --- *)

let test_cli_exit_code () =
  let warning = Finding.v ~code:"WF006" "w" in
  let error = Finding.v ~code:"WF003" "e" in
  Alcotest.(check int) "clean, write ok" 0
    (Finding.cli_exit_code ~write_failed:false []);
  Alcotest.(check int) "clean, write failed" 1
    (Finding.cli_exit_code ~write_failed:true []);
  Alcotest.(check int) "strict warnings survive a failed write" 2
    (Finding.cli_exit_code ~strict:true ~write_failed:true [ warning ]);
  Alcotest.(check int) "errors survive a failed write" 3
    (Finding.cli_exit_code ~write_failed:true [ error ]);
  Alcotest.(check int) "errors, write ok" 3
    (Finding.cli_exit_code ~write_failed:false [ warning; error ])

(* --- Flow: return and restart edges --- *)

let test_flow_edges () =
  (* Same two-function shape as the layout tests:
     b0 -ft-> b1 call(f1) -ft-> b2 branch(taken b4) -ft-> b3 ret; b4 ret
     f1: b5 -ft-> b6 ret *)
  let b = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func b ~name:"main" in
  let f1 = Icfg.Builder.add_func b ~name:"callee" in
  let b0 = Icfg.Builder.add_block b ~func:f0 [| alu; alu |] in
  let b1 = Icfg.Builder.add_block b ~func:f0 [| call |] in
  let b2 = Icfg.Builder.add_block b ~func:f0 [| branch |] in
  let b3 = Icfg.Builder.add_block b ~func:f0 [| ret |] in
  let b4 = Icfg.Builder.add_block b ~func:f0 [| ret |] in
  let b5 = Icfg.Builder.add_block b ~func:f1 [| alu |] in
  let b6 = Icfg.Builder.add_block b ~func:f1 [| ret |] in
  Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b1 ~dst:b5 Edge.Call_to;
  Icfg.Builder.add_edge b ~src:b1 ~dst:b2 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b2 ~dst:b4 Edge.Taken;
  Icfg.Builder.add_edge b ~src:b2 ~dst:b3 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b5 ~dst:b6 Edge.Fallthrough;
  let graph = Icfg.Builder.finish b in
  let flow = Flow.compute graph in
  let succ_pairs id =
    List.sort compare
      (List.map
         (fun (s : Flow.succ) -> (s.dst, Flow.kind_to_string s.kind))
         (Flow.successors flow id))
  in
  Alcotest.(check (list (pair int string)))
    "call goes to the callee only"
    [ (b5, "call") ]
    (succ_pairs b1);
  Alcotest.(check (list (pair int string)))
    "callee return resumes at the continuation"
    [ (b2, "return") ]
    (succ_pairs b6);
  Alcotest.(check (list (pair int string)))
    "entry-function return restarts the program"
    [ (b0, "restart") ]
    (succ_pairs b3);
  Alcotest.(check (list bool)) "all blocks reachable"
    [ true; true; true; true; true; true; true ]
    (Array.to_list (Flow.reachable flow))

(* --- Abstract I-cache analysis --- *)

let test_abstract_must_miss () =
  let graph, layout, (a, b, d, e, f) = thrash_kernel () in
  let t =
    Abstract_icache.analyze ~graph ~layout ~geometry:thrash_geometry ()
  in
  let cls id = Abstract_icache.classify t ~block:id ~instr:0 in
  List.iter
    (fun id ->
      Alcotest.(check string)
        (Printf.sprintf "B%d site 0" id)
        "must-miss"
        (Abstract_icache.classification_name (cls id)))
    [ a; b; d; e; f ];
  Alcotest.(check string) "mid-line fetch elided" "elided"
    (Abstract_icache.classification_name
       (Abstract_icache.classify t ~block:a ~instr:1));
  let s = Abstract_icache.summary t in
  Alcotest.(check int) "blocks" 5 s.blocks;
  Alcotest.(check int) "reachable" 5 s.reachable_blocks;
  Alcotest.(check int) "sites" 5 s.sites;
  Alcotest.(check int) "must-miss sites" 5 s.must_miss;
  Alcotest.(check int) "must-hit sites" 0 s.must_hit;
  Alcotest.(check int) "unknown sites" 0 s.unknown

let test_abstract_no_elision () =
  let graph, layout, (a, _, _, _, _) = thrash_kernel () in
  let t =
    Abstract_icache.analyze ~elision:false ~graph ~layout
      ~geometry:thrash_geometry ()
  in
  (* Without elision a mid-line fetch re-accesses its just-filled
     line: a guaranteed hit. *)
  Alcotest.(check string) "mid-line fetch hits" "must-hit"
    (Abstract_icache.classification_name
       (Abstract_icache.classify t ~block:a ~instr:1))

let test_abstract_loop_pressure () =
  let graph, layout, (a, _, _, _, _) = thrash_kernel () in
  let t =
    Abstract_icache.analyze ~graph ~layout ~geometry:thrash_geometry ()
  in
  match Abstract_icache.loop_pressures t with
  | [ l ] ->
      Alcotest.(check int) "header" a l.header;
      Alcotest.(check int) "loop blocks" 4 l.loop_blocks;
      Alcotest.(check int) "distinct lines" 4 l.distinct_lines;
      Alcotest.(check int) "max set pressure" 2 l.max_set_pressure;
      Alcotest.(check bool) "does not fit one way" false l.fits
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

(* --- A guaranteed-hit kernel: two 16 B lines on a 4-way cache.

     p (2 alu) -ft-> a (2 alu) -ft-> b (alu, branch); b -taken-> a,
     b -ft-> c (ret)

   p and a share the line at 0x10000, b and c the line at 0x10010.
   The p->a fetch is elided (same line), so the only access to a's
   site comes from the b->a back edge — by then the line is resident:
   a is a static guaranteed hit.  c's only incoming edge elides. *)

let hit_kernel () =
  let bld = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func bld ~name:"main" in
  let p = Icfg.Builder.add_block bld ~func:f0 [| alu; alu |] in
  let a = Icfg.Builder.add_block bld ~func:f0 [| alu; alu |] in
  let b = Icfg.Builder.add_block bld ~func:f0 [| alu; branch |] in
  let c = Icfg.Builder.add_block bld ~func:f0 [| ret |] in
  Icfg.Builder.add_edge bld ~src:p ~dst:a Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:a ~dst:b Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:b ~dst:a Edge.Taken;
  Icfg.Builder.add_edge bld ~src:b ~dst:c Edge.Fallthrough;
  let graph = Icfg.Builder.finish bld in
  (graph, original_layout graph, (p, a, b, c))

let hit_geometry = Geometry.make ~size_bytes:128 ~assoc:4 ~line_bytes:16

let hit_trace (p, a, b, c) : Tracer.trace =
  { blocks = [| p; a; b; a; b; c; p; a; b; c |];
    dynamic_instrs = 18;
    restarts = 1 }

let test_abstract_must_hit () =
  let graph, layout, (p, a, b, c) = hit_kernel () in
  let t = Abstract_icache.analyze ~graph ~layout ~geometry:hit_geometry () in
  let name id =
    Abstract_icache.classification_name
      (Abstract_icache.classify t ~block:id ~instr:0)
  in
  Alcotest.(check string) "back-edge target is a guaranteed hit" "must-hit"
    (name a);
  Alcotest.(check string) "entry is unknown (cold start vs restart)" "unknown"
    (name p);
  Alcotest.(check string) "loop body head is unknown (first trip misses)"
    "unknown" (name b);
  Alcotest.(check string) "every edge into c elides" "elided" (name c);
  let s = Abstract_icache.summary t in
  Alcotest.(check int) "sites" 3 s.sites;
  Alcotest.(check int) "must-hit sites" 1 s.must_hit;
  Alcotest.(check int) "must-miss sites" 0 s.must_miss;
  match Abstract_icache.loop_pressures t with
  | [ l ] ->
      Alcotest.(check int) "loop fits header" a l.header;
      Alcotest.(check int) "two lines" 2 l.distinct_lines;
      Alcotest.(check int) "one line per set" 1 l.max_set_pressure;
      Alcotest.(check bool) "fits" true l.fits
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let test_abstract_unreachable () =
  let bld = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func bld ~name:"main" in
  let a = Icfg.Builder.add_block bld ~func:f0 [| jump |] in
  let dead = Icfg.Builder.add_block bld ~func:f0 [| ret |] in
  Icfg.Builder.add_edge bld ~src:a ~dst:a Edge.Taken;
  let graph = Icfg.Builder.finish bld in
  let layout = original_layout graph in
  let t = Abstract_icache.analyze ~graph ~layout ~geometry:thrash_geometry () in
  Alcotest.(check string) "dead block" "unreachable"
    (Abstract_icache.classification_name
       (Abstract_icache.classify t ~block:dead ~instr:0));
  Alcotest.(check int) "reachable count" 1
    (Abstract_icache.summary t).reachable_blocks

(* --- Soundness cross-check --- *)

let test_soundness_thrash () =
  let graph, layout, ids = thrash_kernel () in
  let program = program_of "thrash" graph in
  let r =
    Soundness.check ~geometry:thrash_geometry ~program ~layout
      ~trace:(thrash_trace ids) ()
  in
  Alcotest.(check (list string)) "sound" [] r.violations;
  Alcotest.(check int) "fetches" 50 r.counts.fetches;
  Alcotest.(check int) "accesses" 14 r.counts.accesses;
  Alcotest.(check int) "elided" 36 r.counts.elided;
  Alcotest.(check int) "all accesses must-miss" 14 r.counts.must_miss_accesses;
  Alcotest.(check int) "hits" 0 r.counts.hits;
  Alcotest.(check int) "misses" 14 r.counts.misses;
  Alcotest.(check (float 1e-9)) "full coverage" 1.0
    (Soundness.coverage r.counts)

let test_soundness_must_hit () =
  let graph, layout, ids = hit_kernel () in
  let program = program_of "hit" graph in
  let r =
    Soundness.check ~geometry:hit_geometry ~program ~layout
      ~trace:(hit_trace ids) ()
  in
  Alcotest.(check (list string)) "sound" [] r.violations;
  Alcotest.(check int) "fetches" 18 r.counts.fetches;
  Alcotest.(check int) "accesses" 6 r.counts.accesses;
  Alcotest.(check int) "elided" 12 r.counts.elided;
  Alcotest.(check int) "must-hit accesses" 1 r.counts.must_hit_accesses;
  Alcotest.(check int) "unknown accesses" 5 r.counts.unknown_accesses;
  Alcotest.(check int) "hits" 4 r.counts.hits;
  Alcotest.(check int) "misses" 2 r.counts.misses

let test_soundness_mibench () =
  (* End-to-end on a real generated workload: profile-guided layout,
     evaluation trace, XScale default geometry. *)
  let program = Codegen.generate (Wayplace.Workloads.Mibench.find "crc") in
  let trace, profile =
    Tracer.trace_and_profile program Tracer.Large
  in
  let compiled = Wayplace.compile program.graph profile in
  let r =
    Soundness.check ~program ~layout:compiled.Wayplace.layout ~trace ()
  in
  Alcotest.(check (list string)) "sound on crc" [] r.violations;
  Alcotest.(check bool) "classified something" true
    (r.counts.must_hit_accesses > 0)

let test_coverage_empty () =
  let c : Soundness.counts =
    {
      fetches = 0;
      elided = 0;
      accesses = 0;
      must_hit_accesses = 0;
      must_miss_accesses = 0;
      unknown_accesses = 0;
      hits = 0;
      misses = 0;
    }
  in
  Alcotest.(check (float 1e-9)) "no accesses" 0.0 (Soundness.coverage c)

let () =
  Alcotest.run "lint"
    [
      ( "finding",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "unregistered code" `Quick test_finding_v_unregistered;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "severity order" `Quick test_severity_order;
        ] );
      ( "wf_lint",
        [
          Alcotest.test_case "unaligned" `Quick test_wf_unaligned;
          Alcotest.test_case "overlap" `Quick test_wf_overlap;
          Alcotest.test_case "gap" `Quick test_wf_gap;
          Alcotest.test_case "size mismatch" `Quick test_wf_size_mismatch;
          Alcotest.test_case "fallthrough order" `Quick test_wf_fallthrough_order;
          Alcotest.test_case "unreachable" `Quick test_wf_unreachable;
          Alcotest.test_case "no-return callee" `Quick test_wf_no_return;
          Alcotest.test_case "cross-function edge" `Quick test_wf_cross_function_edge;
          Alcotest.test_case "clean kernel" `Quick test_wf_clean_kernel;
          Alcotest.test_case "stale link field" `Quick test_wf_stale_link_field;
          Alcotest.test_case "target out of range" `Quick test_wf_target_out_of_range;
          Alcotest.test_case "undecodable word" `Quick test_wf_undecodable;
          Alcotest.test_case "instr mismatch" `Quick test_wf_instr_mismatch;
        ] );
      ( "contract",
        [
          Alcotest.test_case "clean" `Quick test_ct_clean;
          Alcotest.test_case "area not page multiple" `Quick test_ct_area_not_page_multiple;
          Alcotest.test_case "stale TLB bit" `Quick test_ct_stale_tlb_bit;
          Alcotest.test_case "block spans ways" `Quick test_ct_block_spans_ways;
          Alcotest.test_case "slot competition" `Quick test_ct_slot_competition;
          Alcotest.test_case "base mismatch" `Quick test_ct_base_mismatch;
          Alcotest.test_case "bad page size" `Quick test_ct_bad_page_size;
          Alcotest.test_case "reserved clean" `Quick test_ct_reserved_clean;
          Alcotest.test_case "reserved user overlap" `Quick
            test_ct_reserved_user_overlap;
          Alcotest.test_case "reserved kernel escape" `Quick
            test_ct_reserved_kernel_escape;
          Alcotest.test_case "reserved kernel clean" `Quick
            test_ct_reserved_kernel_clean;
          Alcotest.test_case "reserved bad area" `Quick
            test_ct_reserved_bad_area;
          Alcotest.test_case "cli exit code" `Quick test_cli_exit_code;
        ] );
      ( "flow",
        [ Alcotest.test_case "return and restart edges" `Quick test_flow_edges ] );
      ( "abstract_icache",
        [
          Alcotest.test_case "must-miss kernel" `Quick test_abstract_must_miss;
          Alcotest.test_case "no elision" `Quick test_abstract_no_elision;
          Alcotest.test_case "loop pressure" `Quick test_abstract_loop_pressure;
          Alcotest.test_case "must-hit kernel" `Quick test_abstract_must_hit;
          Alcotest.test_case "unreachable" `Quick test_abstract_unreachable;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "thrash kernel" `Quick test_soundness_thrash;
          Alcotest.test_case "must-hit kernel" `Quick test_soundness_must_hit;
          Alcotest.test_case "mibench crc" `Quick test_soundness_mibench;
          Alcotest.test_case "empty coverage" `Quick test_coverage_empty;
        ] );
    ]
