(* Golden-number regression test (slow/integration tier).

   Pins the fig4a headline numbers recorded in EXPERIMENTS.md — the
   suite-average normalised I-cache energy at the paper's 32KB/32-way
   configuration with a 16KB way-placement area:

     way-placement   56.1% of baseline
     way-memoization 63.9% of baseline

   to within +-0.1pp, so the sweep engine, future perf work and model
   refactors cannot silently change the reproduction's results.  The
   whole 23-benchmark suite runs through the parallel sweep engine,
   which also exercises the domain pool at integration scale. *)

module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Sweep = Wayplace.Sim.Sweep
module Mibench = Wayplace.Workloads.Mibench
module Ed = Wayplace.Energy.Ed

let wp16 = Config.xscale (Config.Way_placement { area_bytes = 16 * 1024 })
let waymemo = Config.xscale Config.Way_memoization
let baseline = Config.xscale Config.Baseline

let suite_average engine config =
  let norm benchmark =
    let b = Sweep.stats engine { Sweep.benchmark; config = baseline } in
    let s = Sweep.stats engine { Sweep.benchmark; config } in
    Ed.normalised
      ~scheme:(Stats.icache_energy_pj s)
      ~baseline:(Stats.icache_energy_pj b)
  in
  let names = Mibench.names in
  List.fold_left (fun acc n -> acc +. norm n) 0.0 names
  /. float_of_int (List.length names)

let test_fig4a_suite_averages () =
  let engine = Sweep.create () in
  let jobs =
    Sweep.with_baselines
      (List.concat_map
         (fun config ->
           List.map (fun benchmark -> { Sweep.benchmark; config }) Mibench.names)
         [ wp16; waymemo ])
  in
  ignore (Sweep.run_batch engine jobs);
  Alcotest.(check (float 0.001))
    "way-placement suite average (EXPERIMENTS.md fig4a)" 0.561
    (suite_average engine wp16);
  Alcotest.(check (float 0.001))
    "way-memoization suite average (EXPERIMENTS.md fig4a)" 0.639
    (suite_average engine waymemo)

let () =
  Alcotest.run "golden"
    [
      ( "fig4a",
        [ Alcotest.test_case "suite averages pinned" `Slow test_fig4a_suite_averages ] );
    ]
