(* Golden-number regression tests (slow/integration tier).

   Pins the headline numbers recorded in EXPERIMENTS.md at the paper's
   32KB/32-way configuration with a 16KB way-placement area:

     fig4a  suite-average normalised I-cache energy
              way-placement   56.1% of baseline
              way-memoization 63.9% of baseline
     fig4b  suite-average normalised ED product
              way-placement   0.9369
              way-memoization 0.9518

   each to within +-0.1pp / +-0.001, so the sweep engine, future perf
   work and model refactors cannot silently change the reproduction's
   results.  The whole 23-benchmark suite runs once through one shared
   parallel sweep engine (memoised across the two tests), which also
   exercises the domain pool at integration scale. *)

module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Sweep = Wayplace.Sim.Sweep
module Mibench = Wayplace.Workloads.Mibench
module Ed = Wayplace.Energy.Ed

let wp16 = Config.xscale (Config.Way_placement { area_bytes = 16 * 1024 })
let waymemo = Config.xscale Config.Way_memoization
let baseline = Config.xscale Config.Baseline

(* One engine for the whole binary: fig4b reuses every simulation
   fig4a ran (pure cache hits), so the suite is simulated exactly
   once. *)
let engine =
  lazy
    (let engine = Sweep.create () in
     let jobs =
       Sweep.with_baselines
         (List.concat_map
            (fun config ->
              List.map
                (fun benchmark -> { Sweep.benchmark; config })
                Mibench.names)
            [ wp16; waymemo ])
     in
     ignore (Sweep.run_batch engine jobs);
     engine)

let suite_average norm config =
  let engine = Lazy.force engine in
  let one benchmark =
    let b = Sweep.stats engine { Sweep.benchmark; config = baseline } in
    let s = Sweep.stats engine { Sweep.benchmark; config } in
    norm ~baseline:b ~scheme:s
  in
  let names = Mibench.names in
  List.fold_left (fun acc n -> acc +. one n) 0.0 names
  /. float_of_int (List.length names)

let norm_energy ~baseline ~scheme =
  Ed.normalised
    ~scheme:(Stats.icache_energy_pj scheme)
    ~baseline:(Stats.icache_energy_pj baseline)

let norm_ed ~baseline ~scheme =
  Ed.normalised_ed
    ~scheme_energy_pj:(Stats.total_energy_pj scheme)
    ~scheme_cycles:scheme.Stats.cycles
    ~baseline_energy_pj:(Stats.total_energy_pj baseline)
    ~baseline_cycles:baseline.Stats.cycles

let test_fig4a_suite_averages () =
  Alcotest.(check (float 0.001))
    "way-placement suite average (EXPERIMENTS.md fig4a)" 0.561
    (suite_average norm_energy wp16);
  Alcotest.(check (float 0.001))
    "way-memoization suite average (EXPERIMENTS.md fig4a)" 0.639
    (suite_average norm_energy waymemo)

let test_fig4b_suite_averages () =
  Alcotest.(check (float 0.001))
    "way-placement ED suite average (EXPERIMENTS.md fig4b)" 0.9369
    (suite_average norm_ed wp16);
  Alcotest.(check (float 0.001))
    "way-memoization ED suite average (EXPERIMENTS.md fig4b)" 0.9518
    (suite_average norm_ed waymemo)

let () =
  Alcotest.run "golden"
    [
      ( "fig4a",
        [
          Alcotest.test_case "suite averages pinned" `Slow
            test_fig4a_suite_averages;
        ] );
      ( "fig4b",
        [
          Alcotest.test_case "ED suite averages pinned" `Slow
            test_fig4b_suite_averages;
        ] );
    ]
