(* Regression tests for the sweep CSV emitter: RFC-4180 quoting and
   the clean-exit contract for unwritable paths (the CLI's [sweep
   --csv] used to interpolate fields raw and die on bad paths). *)

module Report = Wayplace.Sim.Report

let test_csv_field () =
  let check input expected =
    Alcotest.(check string) (Printf.sprintf "field %S" input) expected
      (Report.csv_field input)
  in
  check "plain" "plain";
  check "" "";
  check "32KB/32way/32B" "32KB/32way/32B";
  check "a,b" "\"a,b\"";
  check "say \"hi\"" "\"say \"\"hi\"\"\"";
  check "two\nlines" "\"two\nlines\"";
  check "cr\rhere" "\"cr\rhere\"";
  (* spaces alone need no quotes *)
  check "way placement" "way placement"

let test_csv_line () =
  Alcotest.(check string) "fields joined and terminated"
    "benchmark,\"a,b\",1.0\n"
    (Report.csv_line [ "benchmark"; "a,b"; "1.0" ]);
  Alcotest.(check string) "empty fields survive" ",,\n"
    (Report.csv_line [ ""; ""; "" ])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_write_csv_roundtrip () =
  let path = Filename.temp_file "wayplace_report" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match
        Report.write_csv ~path
          ~header:[ "benchmark"; "scheme"; "ed" ]
          ~rows:[ [ "crc"; "way,placement"; "0.9369" ]; [ "sha"; "x\"y"; "1" ] ]
      with
      | Error msg -> Alcotest.failf "write failed: %s" msg
      | Ok () ->
          Alcotest.(check string) "exact bytes"
            "benchmark,scheme,ed\ncrc,\"way,placement\",0.9369\nsha,\"x\"\"y\",1\n"
            (read_file path))

let test_write_csv_unwritable_path () =
  match
    Report.write_csv ~path:"/nonexistent-dir/deeper/out.csv"
      ~header:[ "a" ] ~rows:[]
  with
  | Error msg ->
      Alcotest.(check bool) "diagnostic not empty" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "writing into a missing directory succeeded"

(* The CLI exits 1 with the Error message instead of raising; locked in
   end-to-end by the differential fuzz smoke step in CI, and at the lib
   level here. *)

(* --- JSON: the [sweep --json] and Chrome-trace serialisation --- *)

let test_json_escape () =
  let check input expected =
    Alcotest.(check string) (Printf.sprintf "escape %S" input) expected
      (Report.json_escape input)
  in
  check "plain" "plain";
  check "" "";
  check "say \"hi\"" "say \\\"hi\\\"";
  check "back\\slash" "back\\\\slash";
  check "two\nlines" "two\\nlines";
  check "cr\rhere" "cr\\rhere";
  check "tab\there" "tab\\there";
  check "bell\007" "bell\\u0007";
  check "nul\000byte" "nul\\u0000byte";
  (* high bytes pass through untouched (the emitter is encoding-
     agnostic; strings here are ASCII anyway) *)
  check "caf\xc3\xa9" "caf\xc3\xa9"

let test_json_to_string () =
  let open Report in
  let check name j expected =
    Alcotest.(check string) name expected (json_to_string j)
  in
  check "null" Jnull "null";
  check "true" (Jbool true) "true";
  check "false" (Jbool false) "false";
  check "int" (Jint (-42)) "-42";
  check "integral float keeps a decimal point" (Jfloat 2.0) "2.0";
  check "fractional float" (Jfloat 0.25) "0.25";
  check "nan has no JSON encoding" (Jfloat Float.nan) "null";
  check "infinity has no JSON encoding" (Jfloat Float.infinity) "null";
  check "string is escaped and quoted" (Jstring "a\"b") "\"a\\\"b\"";
  check "empty list" (Jlist []) "[]";
  check "empty object" (Jobj []) "{}";
  check "list" (Jlist [ Jint 1; Jnull; Jbool false ]) "[1,null,false]";
  check "object keys are escaped"
    (Jobj [ ("a", Jint 1); ("b\"c", Jstring "x") ])
    "{\"a\":1,\"b\\\"c\":\"x\"}";
  check "nesting"
    (Jobj [ ("rows", Jlist [ Jobj [ ("ed", Jfloat 0.5) ] ]) ])
    "{\"rows\":[{\"ed\":0.5}]}"

let test_write_json_roundtrip () =
  let path = Filename.temp_file "wayplace_report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let j =
        Report.Jobj
          [
            ("benchmark", Report.Jstring "crc");
            ("energy", Report.Jfloat 0.4072);
          ]
      in
      match Report.write_json ~path j with
      | Error msg -> Alcotest.failf "write failed: %s" msg
      | Ok () ->
          Alcotest.(check string) "exact bytes"
            "{\"benchmark\":\"crc\",\"energy\":0.4072}\n" (read_file path))

let test_write_json_unwritable_path () =
  match
    Report.write_json ~path:"/nonexistent-dir/deeper/out.json" Report.Jnull
  with
  | Error msg ->
      Alcotest.(check bool) "diagnostic not empty" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "writing into a missing directory succeeded"

(* --- perf-JSON reader: tolerant by contract --- *)

let with_perf_file content f =
  let path = Filename.temp_file "wayplace_perf" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content);
      f path)

let well_formed =
  {|{
  "schema": "wayplace-bench-sim/1",
  "host": {"hostname": "h", "os": "Unix", "recommended_domains": 8, "timing_domains": 1},
  "repeat": 3,
  "results": [
    {"benchmark": "crc", "scheme": "baseline", "path": "fast", "instrs": 100, "wall_s": 0.5, "instrs_per_sec": 200.0},
    {"benchmark": "crc_loop", "scheme": "way-memoization", "path": "fastforward", "instrs": 100, "wall_s": 0.25, "instrs_per_sec": 4e8}
  ]
}|}

let test_parse_perf_rows_well_formed () =
  with_perf_file well_formed (fun path ->
      match Report.parse_perf_rows path with
      | Error msg -> Alcotest.failf "parse failed: %s" msg
      | Ok (rows, skipped) ->
          Alcotest.(check int) "no rows skipped" 0 skipped;
          Alcotest.(check int) "both rows found" 2 (List.length rows);
          let (b, s, p), ips = List.hd rows in
          Alcotest.(check string) "benchmark" "crc" b;
          Alcotest.(check string) "scheme" "baseline" s;
          Alcotest.(check string) "path" "fast" p;
          Alcotest.(check (float 0.0)) "throughput" 200.0 ips)

let corrupt =
  (* Every line mentions instrs_per_sec, so each is a claimed result
     row; only the first is usable.  The rest exercise: missing
     field, non-numeric rate, non-finite rate, value truncated away,
     and an unterminated string from a torn write. *)
  {|{"benchmark": "ok", "scheme": "baseline", "path": "fast", "instrs_per_sec": 1.5}
{"scheme": "baseline", "path": "fast", "instrs_per_sec": 2.0}
{"benchmark": "bad1", "scheme": "baseline", "path": "fast", "instrs_per_sec": "fast"}
{"benchmark": "bad2", "scheme": "baseline", "path": "fast", "instrs_per_sec": nan}
{"benchmark": "bad3", "scheme": "baseline", "path": "fast", "instrs_per_sec":
{"benchmark": "bad4", "scheme": "baseline", "instrs_per_sec": 3.0, "path": "trunc|}

let test_parse_perf_rows_corrupt () =
  with_perf_file corrupt (fun path ->
      match Report.parse_perf_rows path with
      | Error msg -> Alcotest.failf "tolerant reader refused file: %s" msg
      | Ok (rows, skipped) ->
          Alcotest.(check int) "good row survives" 1 (List.length rows);
          let (b, _, _), ips = List.hd rows in
          Alcotest.(check string) "good row benchmark" "ok" b;
          Alcotest.(check (float 0.0)) "good row rate" 1.5 ips;
          Alcotest.(check int) "malformed rows counted" 5 skipped)

let test_parse_perf_rows_empty_and_irrelevant () =
  with_perf_file "" (fun path ->
      match Report.parse_perf_rows path with
      | Error msg -> Alcotest.failf "empty file refused: %s" msg
      | Ok (rows, skipped) ->
          Alcotest.(check int) "no rows" 0 (List.length rows);
          Alcotest.(check int) "nothing skipped" 0 skipped);
  (* JSON with no result rows at all: structure only, zero skipped. *)
  with_perf_file "{\n  \"results\": []\n}\n" (fun path ->
      match Report.parse_perf_rows path with
      | Error msg -> Alcotest.failf "row-free file refused: %s" msg
      | Ok (rows, skipped) ->
          Alcotest.(check int) "no rows" 0 (List.length rows);
          Alcotest.(check int) "nothing skipped" 0 skipped)

let test_parse_perf_rows_unreadable () =
  match Report.parse_perf_rows "/nonexistent-dir/deeper/perf.json" with
  | Error msg ->
      Alcotest.(check bool) "diagnostic not empty" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "reading a missing file succeeded"

(* --- Report.parse: the strict reader, round-trip with the emitter --- *)

(* Float equality by bits: the round-trip property is exactness, not
   tolerance (and -0.0 must survive). *)
let rec json_equal a b =
  match (a, b) with
  | Report.Jnull, Report.Jnull -> true
  | Report.Jbool x, Report.Jbool y -> x = y
  | Report.Jint x, Report.Jint y -> x = y
  | Report.Jfloat x, Report.Jfloat y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Report.Jstring x, Report.Jstring y -> String.equal x y
  | Report.Jlist x, Report.Jlist y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Report.Jobj x, Report.Jobj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
           x y
  | _ -> false

let check_parse name input expected =
  match Report.parse input with
  | Error msg -> Alcotest.failf "%s: parse failed: %s" name msg
  | Ok got ->
      if not (json_equal got expected) then
        Alcotest.failf "%s: parsed %s, expected %s" name
          (Report.json_to_string got)
          (Report.json_to_string expected)

let check_parse_fails name input =
  match Report.parse input with
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: error mentions the offset" name)
        true
        (String.length msg > 0
        && String.sub msg 0 (min 20 (String.length msg))
           = "JSON parse error at ")
  | Ok j ->
      Alcotest.failf "%s: accepted %S as %s" name input
        (Report.json_to_string j)

let test_parse_values () =
  let open Report in
  check_parse "whitespace everywhere" "  { \"a\" : [ 1 , 2.5 , null ] }  "
    (Jobj [ ("a", Jlist [ Jint 1; Jfloat 2.5; Jnull ]) ]);
  check_parse "scalars" "[null,true,false,0,-7,1.5,\"s\"]"
    (Jlist
       [ Jnull; Jbool true; Jbool false; Jint 0; Jint (-7); Jfloat 1.5;
         Jstring "s" ]);
  check_parse "exponent is a float" "1e3" (Jfloat 1000.0);
  check_parse "negative zero int" "-0" (Jint 0);
  check_parse "max_int survives" (string_of_int max_int) (Jint max_int);
  check_parse "min_int survives" (string_of_int min_int) (Jint min_int);
  (* an integer literal too big for 63 bits falls back to float rather
     than overflowing silently *)
  check_parse "oversized integer literal becomes float"
    "123456789012345678901234567890" (Jfloat 1.2345678901234568e29);
  check_parse "empty containers" "[[],{}]" (Jlist [ Jlist []; Jobj [] ])

let test_parse_string_escapes () =
  let open Report in
  check_parse "simple escapes" "\"a\\n\\t\\r\\b\\f\\\\\\/\\\"z\""
    (Jstring "a\n\t\r\b\012\\/\"z");
  check_parse "unicode escape" "\"\\u0041\\u007a\"" (Jstring "Az");
  check_parse "nul escape" "\"\\u0000\"" (Jstring "\000");
  (* two-byte and three-byte UTF-8 *)
  check_parse "u00e9 is UTF-8 encoded" "\"\\u00e9\"" (Jstring "\xc3\xa9");
  check_parse "u20ac is UTF-8 encoded" "\"\\u20ac\"" (Jstring "\xe2\x82\xac");
  (* a surrogate pair decodes to one 4-byte scalar *)
  check_parse "surrogate pair" "\"\\ud83d\\ude00\""
    (Jstring "\xf0\x9f\x98\x80");
  (* raw high bytes pass through, matching the emitter *)
  check_parse "raw high bytes" "\"caf\xc3\xa9\"" (Jstring "caf\xc3\xa9");
  check_parse_fails "lone high surrogate" "\"\\ud83d\"";
  check_parse_fails "lone low surrogate" "\"\\ude00\"";
  check_parse_fails "truncated unicode escape" "\"\\u00\"";
  check_parse_fails "unknown escape" "\"\\x41\"";
  check_parse_fails "raw control char" "\"a\nb\""

let test_parse_malformed () =
  check_parse_fails "empty input" "";
  check_parse_fails "blank input" "   ";
  check_parse_fails "truncated object" "{\"a\":1";
  check_parse_fails "truncated list" "[1,2";
  check_parse_fails "truncated string" "\"abc";
  check_parse_fails "bare keyword prefix" "tru";
  check_parse_fails "missing colon" "{\"a\" 1}";
  check_parse_fails "trailing comma in list" "[1,]";
  check_parse_fails "trailing comma in object" "{\"a\":1,}";
  check_parse_fails "unquoted key" "{a:1}";
  check_parse_fails "leading zero" "01";
  check_parse_fails "leading plus" "+1";
  check_parse_fails "bare dot" "1.";
  check_parse_fails "nan literal" "nan";
  check_parse_fails "trailing garbage" "{} x";
  check_parse_fails "two values" "1 2";
  (* duplicate keys are a defect, not a silent last-wins *)
  (match Report.parse "{\"a\":1,\"b\":2,\"a\":3}" with
  | Ok _ -> Alcotest.fail "duplicate key accepted"
  | Error msg ->
      Alcotest.(check bool) "duplicate key named in error" true
        (String.length msg > 0
        &&
        let re = "duplicate key" in
        let n = String.length msg and m = String.length re in
        let rec find i = i + m <= n && (String.sub msg i m = re || find (i + 1)) in
        find 0));
  (* absurd nesting is a clean error, not a stack overflow *)
  let deep = String.concat "" (List.init 600 (fun _ -> "[")) in
  check_parse_fails "absurd nesting" deep

let test_parse_accessors () =
  let open Report in
  match parse "{\"i\":3,\"f\":1.5,\"s\":\"x\",\"b\":true,\"l\":[1]}" with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok j ->
      Alcotest.(check (option int)) "to_int" (Some 3)
        (Option.bind (member "i" j) to_int);
      Alcotest.(check (option (float 0.0))) "to_float" (Some 1.5)
        (Option.bind (member "f" j) to_float);
      Alcotest.(check (option (float 0.0))) "to_float widens ints" (Some 3.0)
        (Option.bind (member "i" j) to_float);
      Alcotest.(check (option string)) "to_string" (Some "x")
        (Option.bind (member "s" j) to_string);
      Alcotest.(check (option bool)) "to_bool" (Some true)
        (Option.bind (member "b" j) to_bool);
      Alcotest.(check bool) "to_list" true
        (match Option.bind (member "l" j) to_list with
        | Some [ Jint 1 ] -> true
        | _ -> false);
      Alcotest.(check (option int)) "missing member" None
        (Option.bind (member "zz" j) to_int);
      Alcotest.(check (option int)) "wrong type" None
        (Option.bind (member "s" j) to_int)

(* The generative form of the satellite requirement: parse (emit x) = x
   for every protocol-expressible value, including floats (the emitter
   picks the shortest exact decimal form) and strings over the full
   byte range. *)
let json_gen =
  let open QCheck.Gen in
  let finite_float =
    map
      (fun f -> if Float.is_finite f then f else 0.0)
      (oneof
         [
           float;
           map float_of_int int;
           oneofl
             [ 0.0; -0.0; 0.25; 0.1; 1e-300; 4e18; 1.7976931348623157e308;
               5e-324; 3.141592653589793 ];
         ])
  in
  let any_string = string_size ~gen:(map Char.chr (int_range 0 255)) (0 -- 12) in
  let scalar =
    oneof
      [
        return Report.Jnull;
        map (fun b -> Report.Jbool b) bool;
        map (fun i -> Report.Jint i) int;
        map (fun f -> Report.Jfloat f) finite_float;
        map (fun s -> Report.Jstring s) any_string;
      ]
  in
  let dedup_keys kvs =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (k, _) ->
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      kvs
  in
  sized
  @@ fix (fun self n ->
         if n = 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map (fun l -> Report.Jlist l)
                   (list_size (0 -- 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Report.Jobj (dedup_keys kvs))
                   (list_size (0 -- 4) (pair any_string (self (n / 2)))) );
             ])

let roundtrip_prop =
  QCheck.Test.make ~count:1000 ~name:"parse (emit x) = x"
    (QCheck.make ~print:Report.json_to_string json_gen)
    (fun j ->
      match Report.parse (Report.json_to_string j) with
      | Ok j' -> json_equal j j'
      | Error msg ->
          QCheck.Test.fail_reportf "emitted %s unparseable: %s"
            (Report.json_to_string j) msg)

let () =
  Alcotest.run "report"
    [
      ( "csv",
        [
          Alcotest.test_case "field quoting" `Quick test_csv_field;
          Alcotest.test_case "line assembly" `Quick test_csv_line;
          Alcotest.test_case "write + read back" `Quick
            test_write_csv_roundtrip;
          Alcotest.test_case "unwritable path is a clean error" `Quick
            test_write_csv_unwritable_path;
        ] );
      ( "json",
        [
          Alcotest.test_case "string escaping" `Quick test_json_escape;
          Alcotest.test_case "rendering" `Quick test_json_to_string;
          Alcotest.test_case "write + read back" `Quick
            test_write_json_roundtrip;
          Alcotest.test_case "unwritable path is a clean error" `Quick
            test_write_json_unwritable_path;
        ] );
      ( "parse",
        [
          Alcotest.test_case "values and whitespace" `Quick test_parse_values;
          Alcotest.test_case "string escapes" `Quick test_parse_string_escapes;
          Alcotest.test_case "malformed inputs are clean errors" `Quick
            test_parse_malformed;
          Alcotest.test_case "accessors" `Quick test_parse_accessors;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
      ( "perf rows",
        [
          Alcotest.test_case "well-formed file" `Quick
            test_parse_perf_rows_well_formed;
          Alcotest.test_case "corrupt rows are skipped, not fatal" `Quick
            test_parse_perf_rows_corrupt;
          Alcotest.test_case "empty and row-free files" `Quick
            test_parse_perf_rows_empty_and_irrelevant;
          Alcotest.test_case "unreadable path is a clean error" `Quick
            test_parse_perf_rows_unreadable;
        ] );
    ]
