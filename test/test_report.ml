(* Regression tests for the sweep CSV emitter: RFC-4180 quoting and
   the clean-exit contract for unwritable paths (the CLI's [sweep
   --csv] used to interpolate fields raw and die on bad paths). *)

module Report = Wayplace.Sim.Report

let test_csv_field () =
  let check input expected =
    Alcotest.(check string) (Printf.sprintf "field %S" input) expected
      (Report.csv_field input)
  in
  check "plain" "plain";
  check "" "";
  check "32KB/32way/32B" "32KB/32way/32B";
  check "a,b" "\"a,b\"";
  check "say \"hi\"" "\"say \"\"hi\"\"\"";
  check "two\nlines" "\"two\nlines\"";
  check "cr\rhere" "\"cr\rhere\"";
  (* spaces alone need no quotes *)
  check "way placement" "way placement"

let test_csv_line () =
  Alcotest.(check string) "fields joined and terminated"
    "benchmark,\"a,b\",1.0\n"
    (Report.csv_line [ "benchmark"; "a,b"; "1.0" ]);
  Alcotest.(check string) "empty fields survive" ",,\n"
    (Report.csv_line [ ""; ""; "" ])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_write_csv_roundtrip () =
  let path = Filename.temp_file "wayplace_report" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match
        Report.write_csv ~path
          ~header:[ "benchmark"; "scheme"; "ed" ]
          ~rows:[ [ "crc"; "way,placement"; "0.9369" ]; [ "sha"; "x\"y"; "1" ] ]
      with
      | Error msg -> Alcotest.failf "write failed: %s" msg
      | Ok () ->
          Alcotest.(check string) "exact bytes"
            "benchmark,scheme,ed\ncrc,\"way,placement\",0.9369\nsha,\"x\"\"y\",1\n"
            (read_file path))

let test_write_csv_unwritable_path () =
  match
    Report.write_csv ~path:"/nonexistent-dir/deeper/out.csv"
      ~header:[ "a" ] ~rows:[]
  with
  | Error msg ->
      Alcotest.(check bool) "diagnostic not empty" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "writing into a missing directory succeeded"

(* The CLI exits 1 with the Error message instead of raising; locked in
   end-to-end by the differential fuzz smoke step in CI, and at the lib
   level here. *)

(* --- JSON: the [sweep --json] and Chrome-trace serialisation --- *)

let test_json_escape () =
  let check input expected =
    Alcotest.(check string) (Printf.sprintf "escape %S" input) expected
      (Report.json_escape input)
  in
  check "plain" "plain";
  check "" "";
  check "say \"hi\"" "say \\\"hi\\\"";
  check "back\\slash" "back\\\\slash";
  check "two\nlines" "two\\nlines";
  check "cr\rhere" "cr\\rhere";
  check "tab\there" "tab\\there";
  check "bell\007" "bell\\u0007";
  check "nul\000byte" "nul\\u0000byte";
  (* high bytes pass through untouched (the emitter is encoding-
     agnostic; strings here are ASCII anyway) *)
  check "caf\xc3\xa9" "caf\xc3\xa9"

let test_json_to_string () =
  let open Report in
  let check name j expected =
    Alcotest.(check string) name expected (json_to_string j)
  in
  check "null" Jnull "null";
  check "true" (Jbool true) "true";
  check "false" (Jbool false) "false";
  check "int" (Jint (-42)) "-42";
  check "integral float keeps a decimal point" (Jfloat 2.0) "2.0";
  check "fractional float" (Jfloat 0.25) "0.25";
  check "nan has no JSON encoding" (Jfloat Float.nan) "null";
  check "infinity has no JSON encoding" (Jfloat Float.infinity) "null";
  check "string is escaped and quoted" (Jstring "a\"b") "\"a\\\"b\"";
  check "empty list" (Jlist []) "[]";
  check "empty object" (Jobj []) "{}";
  check "list" (Jlist [ Jint 1; Jnull; Jbool false ]) "[1,null,false]";
  check "object keys are escaped"
    (Jobj [ ("a", Jint 1); ("b\"c", Jstring "x") ])
    "{\"a\":1,\"b\\\"c\":\"x\"}";
  check "nesting"
    (Jobj [ ("rows", Jlist [ Jobj [ ("ed", Jfloat 0.5) ] ]) ])
    "{\"rows\":[{\"ed\":0.5}]}"

let test_write_json_roundtrip () =
  let path = Filename.temp_file "wayplace_report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let j =
        Report.Jobj
          [
            ("benchmark", Report.Jstring "crc");
            ("energy", Report.Jfloat 0.4072);
          ]
      in
      match Report.write_json ~path j with
      | Error msg -> Alcotest.failf "write failed: %s" msg
      | Ok () ->
          Alcotest.(check string) "exact bytes"
            "{\"benchmark\":\"crc\",\"energy\":0.4072}\n" (read_file path))

let test_write_json_unwritable_path () =
  match
    Report.write_json ~path:"/nonexistent-dir/deeper/out.json" Report.Jnull
  with
  | Error msg ->
      Alcotest.(check bool) "diagnostic not empty" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "writing into a missing directory succeeded"

(* --- perf-JSON reader: tolerant by contract --- *)

let with_perf_file content f =
  let path = Filename.temp_file "wayplace_perf" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content);
      f path)

let well_formed =
  {|{
  "schema": "wayplace-bench-sim/1",
  "host": {"hostname": "h", "os": "Unix", "recommended_domains": 8, "timing_domains": 1},
  "repeat": 3,
  "results": [
    {"benchmark": "crc", "scheme": "baseline", "path": "fast", "instrs": 100, "wall_s": 0.5, "instrs_per_sec": 200.0},
    {"benchmark": "crc_loop", "scheme": "way-memoization", "path": "fastforward", "instrs": 100, "wall_s": 0.25, "instrs_per_sec": 4e8}
  ]
}|}

let test_parse_perf_rows_well_formed () =
  with_perf_file well_formed (fun path ->
      match Report.parse_perf_rows path with
      | Error msg -> Alcotest.failf "parse failed: %s" msg
      | Ok (rows, skipped) ->
          Alcotest.(check int) "no rows skipped" 0 skipped;
          Alcotest.(check int) "both rows found" 2 (List.length rows);
          let (b, s, p), ips = List.hd rows in
          Alcotest.(check string) "benchmark" "crc" b;
          Alcotest.(check string) "scheme" "baseline" s;
          Alcotest.(check string) "path" "fast" p;
          Alcotest.(check (float 0.0)) "throughput" 200.0 ips)

let corrupt =
  (* Every line mentions instrs_per_sec, so each is a claimed result
     row; only the first is usable.  The rest exercise: missing
     field, non-numeric rate, non-finite rate, value truncated away,
     and an unterminated string from a torn write. *)
  {|{"benchmark": "ok", "scheme": "baseline", "path": "fast", "instrs_per_sec": 1.5}
{"scheme": "baseline", "path": "fast", "instrs_per_sec": 2.0}
{"benchmark": "bad1", "scheme": "baseline", "path": "fast", "instrs_per_sec": "fast"}
{"benchmark": "bad2", "scheme": "baseline", "path": "fast", "instrs_per_sec": nan}
{"benchmark": "bad3", "scheme": "baseline", "path": "fast", "instrs_per_sec":
{"benchmark": "bad4", "scheme": "baseline", "instrs_per_sec": 3.0, "path": "trunc|}

let test_parse_perf_rows_corrupt () =
  with_perf_file corrupt (fun path ->
      match Report.parse_perf_rows path with
      | Error msg -> Alcotest.failf "tolerant reader refused file: %s" msg
      | Ok (rows, skipped) ->
          Alcotest.(check int) "good row survives" 1 (List.length rows);
          let (b, _, _), ips = List.hd rows in
          Alcotest.(check string) "good row benchmark" "ok" b;
          Alcotest.(check (float 0.0)) "good row rate" 1.5 ips;
          Alcotest.(check int) "malformed rows counted" 5 skipped)

let test_parse_perf_rows_empty_and_irrelevant () =
  with_perf_file "" (fun path ->
      match Report.parse_perf_rows path with
      | Error msg -> Alcotest.failf "empty file refused: %s" msg
      | Ok (rows, skipped) ->
          Alcotest.(check int) "no rows" 0 (List.length rows);
          Alcotest.(check int) "nothing skipped" 0 skipped);
  (* JSON with no result rows at all: structure only, zero skipped. *)
  with_perf_file "{\n  \"results\": []\n}\n" (fun path ->
      match Report.parse_perf_rows path with
      | Error msg -> Alcotest.failf "row-free file refused: %s" msg
      | Ok (rows, skipped) ->
          Alcotest.(check int) "no rows" 0 (List.length rows);
          Alcotest.(check int) "nothing skipped" 0 skipped)

let test_parse_perf_rows_unreadable () =
  match Report.parse_perf_rows "/nonexistent-dir/deeper/perf.json" with
  | Error msg ->
      Alcotest.(check bool) "diagnostic not empty" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "reading a missing file succeeded"

let () =
  Alcotest.run "report"
    [
      ( "csv",
        [
          Alcotest.test_case "field quoting" `Quick test_csv_field;
          Alcotest.test_case "line assembly" `Quick test_csv_line;
          Alcotest.test_case "write + read back" `Quick
            test_write_csv_roundtrip;
          Alcotest.test_case "unwritable path is a clean error" `Quick
            test_write_csv_unwritable_path;
        ] );
      ( "json",
        [
          Alcotest.test_case "string escaping" `Quick test_json_escape;
          Alcotest.test_case "rendering" `Quick test_json_to_string;
          Alcotest.test_case "write + read back" `Quick
            test_write_json_roundtrip;
          Alcotest.test_case "unwritable path is a clean error" `Quick
            test_write_json_unwritable_path;
        ] );
      ( "perf rows",
        [
          Alcotest.test_case "well-formed file" `Quick
            test_parse_perf_rows_well_formed;
          Alcotest.test_case "corrupt rows are skipped, not fatal" `Quick
            test_parse_perf_rows_corrupt;
          Alcotest.test_case "empty and row-free files" `Quick
            test_parse_perf_rows_empty_and_irrelevant;
          Alcotest.test_case "unreadable path is a clean error" `Quick
            test_parse_perf_rows_unreadable;
        ] );
    ]
