(* Quickstart: the paper's Figure 1, reproduced on the real cache model.

   A miniature cache with two sets and four ways (8-byte lines) holds
   three instructions.  Fetching them the normal way performs a
   fully-associative search in one set per access: 3 x 4 = 12 tag
   comparisons.  With way-placement, each instruction's way is named by
   the low bits of its tag, so one comparison per access suffices: 3.

   Run with:  dune exec examples/quickstart.exe *)

module Cache = Wayplace.Cache

let () =
  let geometry = Cache.Geometry.make ~size_bytes:64 ~assoc:4 ~line_bytes:8 in
  Format.printf "cache: %a (%d sets)@." Cache.Geometry.pp geometry
    (Cache.Geometry.sets geometry);

  (* Figure 1's instructions: add (tag 1, left set), br (tag 2, right
     set), mul (tag 8, right set). *)
  let add = 0x14 and br = 0x28 and mul = 0x88 in
  let show name addr =
    Format.printf "  %-3s at 0x%02x: set %d, tag %d, designated way %d@." name
      addr
      (Cache.Geometry.set_index geometry addr)
      (Cache.Geometry.tag_of geometry addr)
      (Cache.Geometry.way_of_addr geometry addr)
  in
  show "add" add;
  show "br" br;
  show "mul" mul;

  (* Baseline: lines land wherever replacement puts them; every access
     searches all four ways of its set. *)
  let baseline =
    Cache.Cam_cache.create geometry ~replacement:Cache.Replacement.Round_robin
  in
  List.iter
    (fun addr -> ignore (Cache.Cam_cache.fill baseline addr Cache.Cam_cache.Victim_by_policy))
    [ add; br; mul ];
  let comparisons =
    List.fold_left
      (fun acc addr ->
        let outcome = Cache.Cam_cache.lookup_full baseline addr in
        assert outcome.Cache.Cam_cache.hit;
        acc + outcome.Cache.Cam_cache.tag_comparisons)
      0 [ add; br; mul ]
  in
  Format.printf "normal access:        %d tag comparisons@." comparisons;

  (* Way-placement: each line is placed in the way named by the low
     bits of its tag, and lookups probe exactly that way. *)
  let placed =
    Cache.Cam_cache.create geometry ~replacement:Cache.Replacement.Round_robin
  in
  List.iter
    (fun addr ->
      let way = Cache.Geometry.way_of_addr geometry addr in
      ignore (Cache.Cam_cache.fill placed addr (Cache.Cam_cache.Forced_way way)))
    [ add; br; mul ];
  let comparisons =
    List.fold_left
      (fun acc addr ->
        let way = Cache.Geometry.way_of_addr geometry addr in
        let outcome = Cache.Cam_cache.lookup_way placed addr ~way in
        assert outcome.Cache.Cam_cache.hit;
        acc + outcome.Cache.Cam_cache.tag_comparisons)
      0 [ add; br; mul ]
  in
  Format.printf "way-placement access: %d tag comparisons (a 75%% saving)@."
    comparisons;

  (* And the same idea end-to-end on a small program through the
     public API. *)
  let spec = Wayplace.Workloads.Mibench.tiny in
  let program = Wayplace.Workloads.Codegen.generate spec in
  let profile =
    Wayplace.Workloads.Tracer.profile program Wayplace.Workloads.Tracer.Small
  in
  let compiled = Wayplace.compile program.Wayplace.Workloads.Codegen.graph profile in
  let config =
    Wayplace.paper_machine
      (Wayplace.Sim.Config.Way_placement { area_bytes = 16 * 1024 })
  in
  let stats = Wayplace.evaluate ~config ~program ~compiled in
  Format.printf "@.end-to-end on %s: %a@." spec.Wayplace.Workloads.Spec.name
    Wayplace.Sim.Stats.pp_brief stats
