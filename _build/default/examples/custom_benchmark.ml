(* Bring your own program: build an ICFG by hand, profile it, lay it
   out, and simulate it — the full pipeline on a program that did not
   come from the MiBench generator.

   The program is a little checksum kernel:

     main:    init; loop { call hash; call mix }; ret
     hash:    loop over a buffer (hot)
     mix:     straight-line update (warm)
     report:  called once from main's epilogue (cold)

   Run with:  dune exec examples/custom_benchmark.exe                  *)

module Isa = Wayplace.Isa
module Cfg = Wayplace.Cfg

let alu = Isa.Instr.alu Isa.Opcode.Add
let cmp = Isa.Instr.alu Isa.Opcode.Compare
let load = Isa.Instr.load Isa.Instr.Sequential
let store = Isa.Instr.store Isa.Instr.Sequential

let build () =
  let b = Cfg.Icfg.Builder.create () in
  let main = Cfg.Icfg.Builder.add_func b ~name:"main" in
  let hash = Cfg.Icfg.Builder.add_func b ~name:"hash" in
  let mix = Cfg.Icfg.Builder.add_func b ~name:"mix" in
  let report = Cfg.Icfg.Builder.add_func b ~name:"report" in
  let block f instrs = Cfg.Icfg.Builder.add_block b ~func:f (Array.of_list instrs) in

  (* main *)
  let m_init = block main [ alu; alu; store ] in
  let m_call_hash = block main [ alu; Isa.Instr.call ] in
  let m_call_mix = block main [ alu; Isa.Instr.call ] in
  let m_latch = block main [ cmp; Isa.Instr.branch ] in
  let m_call_report = block main [ alu; Isa.Instr.call ] in
  let m_ret = block main [ Isa.Instr.return ] in

  (* hash: a hot buffer loop *)
  let h_entry = block hash [ alu; load ] in
  let h_body = block hash [ load; alu; alu; store ] in
  let h_latch = block hash [ cmp; Isa.Instr.branch ] in
  let h_ret = block hash [ Isa.Instr.return ] in

  (* mix: straight-line *)
  let x_entry = block mix [ load; alu; alu; alu; store ] in
  let x_ret = block mix [ Isa.Instr.return ] in

  (* report: cold *)
  let r_entry = block report [ load; alu; store ] in
  let r_ret = block report [ Isa.Instr.return ] in

  let edge src dst kind = Cfg.Icfg.Builder.add_edge b ~src ~dst kind in
  edge m_init m_call_hash Cfg.Edge.Fallthrough;
  edge m_call_hash h_entry Cfg.Edge.Call_to;
  edge m_call_hash m_call_mix Cfg.Edge.Fallthrough;
  edge m_call_mix x_entry Cfg.Edge.Call_to;
  edge m_call_mix m_latch Cfg.Edge.Fallthrough;
  edge m_latch m_call_hash Cfg.Edge.Taken;
  edge m_latch m_call_report Cfg.Edge.Fallthrough;
  edge m_call_report r_entry Cfg.Edge.Call_to;
  edge m_call_report m_ret Cfg.Edge.Fallthrough;
  edge h_entry h_body Cfg.Edge.Fallthrough;
  edge h_body h_latch Cfg.Edge.Fallthrough;
  edge h_latch h_body Cfg.Edge.Taken;
  edge h_latch h_ret Cfg.Edge.Fallthrough;
  edge x_entry x_ret Cfg.Edge.Fallthrough;
  edge r_entry r_ret Cfg.Edge.Fallthrough;
  let graph = Cfg.Icfg.Builder.finish b in
  (graph, m_latch, h_latch)

let () =
  let graph, m_latch, h_latch = build () in
  Format.printf "%a@.@." Cfg.Icfg.pp_summary graph;

  (* Branch behaviour: main's loop runs ~20 times, hash's buffer loop
     ~50 iterations.  Wrapping the graph in a Codegen.t lets the stock
     tracer drive it. *)
  let taken_prob = Array.make (Cfg.Icfg.num_blocks graph) 0.0 in
  taken_prob.(m_latch) <- 20.0 /. 21.0;
  taken_prob.(h_latch) <- 50.0 /. 51.0;
  let spec =
    { Wayplace.Workloads.Mibench.tiny with name = "checksum"; seed = 42 }
  in
  let program =
    {
      Wayplace.Workloads.Codegen.spec;
      graph;
      taken_prob;
      hot_funcs = [| true; true; true; false |];
    }
  in
  let trace, profile =
    Wayplace.Workloads.Tracer.trace_and_profile program
      Wayplace.Workloads.Tracer.Small
  in
  Format.printf "profile: %a (%d dynamic instrs)@." Cfg.Profile.pp profile
    trace.Wayplace.Workloads.Tracer.dynamic_instrs;

  let compiled = Wayplace.compile graph profile in
  Format.printf "placed order (block ids): %a@.@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    (Array.to_list (Wayplace.Layout.Binary_layout.order compiled.Wayplace.layout));

  (* The hot hash loop must be at the front of the binary. *)
  let first = (Wayplace.Layout.Binary_layout.order compiled.Wayplace.layout).(0) in
  Format.printf "hottest chain starts with block %d (function %s)@.@." first
    (Cfg.Icfg.func graph (Cfg.Icfg.block graph first).Cfg.Basic_block.func)
      .Cfg.Func.name;

  let config =
    Wayplace.paper_machine
      (Wayplace.Sim.Config.Way_placement { area_bytes = 1024 })
  in
  let stats =
    Wayplace.Sim.Simulator.run ~config ~program
      ~layout:compiled.Wayplace.layout ~trace
  in
  Format.printf "way-placement (1KB area): %a@." Wayplace.Sim.Stats.pp stats
