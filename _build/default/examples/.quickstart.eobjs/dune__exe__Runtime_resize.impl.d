examples/runtime_resize.ml: Array Format Sys Wayplace
