examples/area_tuning.mli:
