examples/quickstart.ml: Format List Wayplace
