examples/compare_schemes.ml: Array Format String Sys Wayplace
