examples/custom_benchmark.ml: Array Format Wayplace
