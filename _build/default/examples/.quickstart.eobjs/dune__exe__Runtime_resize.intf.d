examples/runtime_resize.mli:
