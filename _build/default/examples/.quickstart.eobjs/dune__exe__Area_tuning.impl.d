examples/area_tuning.ml: Array Format List Sys Wayplace
