examples/quickstart.mli:
