(* The operating system's view: pick the way-placement area size.

   One compiled layout serves every area size (paper Section 4.1): the
   hottest code sits at the front of the binary, so the OS can trade
   area pages for energy without recompiling.  This example sweeps the
   coverage curve for one benchmark, asks the Area policy for the
   smallest area reaching 95% coverage, and verifies the energy of that
   choice against the largest area.

   Run with:  dune exec examples/area_tuning.exe [-- benchmark]        *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "ispell" in
  let spec =
    try Wayplace.Workloads.Mibench.find name
    with Not_found ->
      Format.eprintf "unknown benchmark %s@." name;
      exit 1
  in
  let program = Wayplace.Workloads.Codegen.generate spec in
  let graph = program.Wayplace.Workloads.Codegen.graph in
  let profile =
    Wayplace.Workloads.Tracer.profile program Wayplace.Workloads.Tracer.Small
  in
  let compiled = Wayplace.compile graph profile in
  let layout = compiled.Wayplace.layout in
  let page_bytes = 1024 in

  Format.printf "coverage of the profiled instruction stream by area size:@.";
  List.iter
    (fun kb ->
      let area = Wayplace.Area.of_kilobytes ~page_bytes kb in
      Format.printf "  %2d KB -> %5.1f%%@." kb
        (100.0 *. Wayplace.Area.coverage area ~graph ~profile ~layout))
    [ 1; 2; 4; 8; 16; 32 ];

  let chosen =
    Wayplace.Area.choose ~page_bytes ~max_bytes:(32 * 1024)
      ~target_coverage:0.95 ~graph ~profile ~layout
  in
  Format.printf "@.OS policy (95%% target) picks: %a@.@." Wayplace.Area.pp
    chosen;

  let evaluate area_bytes =
    let config =
      Wayplace.paper_machine (Wayplace.Sim.Config.Way_placement { area_bytes })
    in
    Wayplace.evaluate ~config ~program ~compiled
  in
  let full = evaluate (16 * 1024) in
  let tuned = evaluate (Wayplace.Area.bytes chosen) in
  Format.printf "16KB area:  %a@." Wayplace.Sim.Stats.pp_brief full;
  Format.printf "chosen:     %a@." Wayplace.Sim.Stats.pp_brief tuned;
  Format.printf
    "@.The chosen area uses %d page(s) of I-TLB way-placement bits while@.\
     giving up %.1f%% of the 16KB area's i-cache savings.@."
    (Wayplace.Area.pages chosen ~page_bytes)
    (100.0
    *. ((Wayplace.Sim.Stats.icache_energy_pj tuned
        -. Wayplace.Sim.Stats.icache_energy_pj full)
       /. Wayplace.Sim.Stats.icache_energy_pj full))
