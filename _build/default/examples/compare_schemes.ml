(* Compare the three schemes on one benchmark — the paper's Section 6.1
   experiment for a single program.

   Run with:  dune exec examples/compare_schemes.exe [-- benchmark]    *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "susan_c" in
  let spec =
    try Wayplace.Workloads.Mibench.find name
    with Not_found ->
      Format.eprintf "unknown benchmark %s; known: %s@." name
        (String.concat ", " Wayplace.Workloads.Mibench.names);
      exit 1
  in
  Format.printf "benchmark: %a@.@." Wayplace.Workloads.Spec.pp spec;
  let prep = Wayplace.Sim.Runner.prepare spec in
  let baseline =
    Wayplace.Sim.Runner.run_scheme prep
      (Wayplace.paper_machine Wayplace.Sim.Config.Baseline)
  in
  Format.printf "%-18s %12s %10s %10s %8s@." "scheme" "icache pJ" "norm E"
    "norm ED" "cycles";
  let row scheme =
    let config = Wayplace.paper_machine scheme in
    let stats = Wayplace.Sim.Runner.run_scheme prep config in
    let norm_e =
      Wayplace.Energy.Ed.normalised
        ~scheme:(Wayplace.Sim.Stats.icache_energy_pj stats)
        ~baseline:(Wayplace.Sim.Stats.icache_energy_pj baseline)
    in
    let norm_ed =
      Wayplace.Energy.Ed.normalised_ed
        ~scheme_energy_pj:(Wayplace.Sim.Stats.total_energy_pj stats)
        ~scheme_cycles:stats.Wayplace.Sim.Stats.cycles
        ~baseline_energy_pj:(Wayplace.Sim.Stats.total_energy_pj baseline)
        ~baseline_cycles:baseline.Wayplace.Sim.Stats.cycles
    in
    Format.printf "%-18s %12.0f %10.3f %10.3f %8d@."
      (Wayplace.Sim.Config.scheme_name scheme)
      (Wayplace.Sim.Stats.icache_energy_pj stats)
      norm_e norm_ed stats.Wayplace.Sim.Stats.cycles
  in
  row Wayplace.Sim.Config.Baseline;
  row (Wayplace.Sim.Config.Way_placement { area_bytes = 16 * 1024 });
  row Wayplace.Sim.Config.Way_memoization;
  Format.printf
    "@.Way-placement needs no extra storage; way-memoization adds a 21%%@.\
     data-side overhead for its links, which is why it saves less.@."
