(* Tests for the plain-text serialisation of profiles and orders. *)

module Serial = Wayplace.Serial
module Profile = Wayplace.Cfg.Profile
module Mibench = Wayplace.Workloads.Mibench
module Codegen = Wayplace.Workloads.Codegen
module Tracer = Wayplace.Workloads.Tracer

let test_profile_roundtrip () =
  let p = Profile.create ~num_blocks:10 in
  Profile.record_block_n p 0 5;
  Profile.record_block_n p 7 12345;
  match Serial.profile_of_string (Serial.profile_to_string p) with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
      Alcotest.(check int) "num blocks" 10 (Profile.num_blocks q);
      for id = 0 to 9 do
        Alcotest.(check int)
          (Printf.sprintf "count of %d" id)
          (Profile.block_count p id) (Profile.block_count q id)
      done

let test_profile_roundtrip_real () =
  let program = Codegen.generate Mibench.tiny in
  let p = Tracer.profile program Tracer.Small in
  match Serial.profile_of_string (Serial.profile_to_string p) with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
      let same = ref true in
      for id = 0 to Profile.num_blocks p - 1 do
        if Profile.block_count p id <> Profile.block_count q id then same := false
      done;
      Alcotest.(check bool) "identical counts" true !same

let expect_profile_error name s =
  Alcotest.(check bool) name true
    (match Serial.profile_of_string s with Error _ -> true | Ok _ -> false)

let test_profile_rejects () =
  expect_profile_error "empty" "";
  expect_profile_error "bad magic" "nonsense v9\nblocks 3\n";
  expect_profile_error "missing header" "wayplace-profile v1\nnope\n";
  expect_profile_error "out of range id" "wayplace-profile v1\nblocks 2\n5 1\n";
  expect_profile_error "zero count" "wayplace-profile v1\nblocks 2\n0 0\n";
  expect_profile_error "duplicate id" "wayplace-profile v1\nblocks 2\n0 1\n0 2\n";
  expect_profile_error "garbage entry" "wayplace-profile v1\nblocks 2\nfoo bar\n"

let test_order_roundtrip () =
  let order = [| 3; 1; 4; 0; 2 |] in
  match Serial.order_of_string (Serial.order_to_string order) with
  | Error msg -> Alcotest.fail msg
  | Ok back -> Alcotest.(check (list int)) "same order" (Array.to_list order)
                 (Array.to_list back)

let expect_order_error name s =
  Alcotest.(check bool) name true
    (match Serial.order_of_string s with Error _ -> true | Ok _ -> false)

let test_order_rejects () =
  expect_order_error "bad magic" "wrong v1\nblocks 1\n0\n";
  expect_order_error "wrong count" "wayplace-order v1\nblocks 3\n0\n1\n";
  expect_order_error "duplicate" "wayplace-order v1\nblocks 2\n0\n0\n";
  expect_order_error "out of range" "wayplace-order v1\nblocks 2\n0\n7\n";
  expect_order_error "garbage" "wayplace-order v1\nblocks 1\nabc\n"

let test_file_roundtrip () =
  let path = Filename.temp_file "wayplace" ".profile" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let p = Profile.create ~num_blocks:3 in
      Profile.record_block_n p 1 9;
      Serial.save ~path (Serial.profile_to_string p);
      match Serial.load ~path with
      | Error msg -> Alcotest.fail msg
      | Ok contents -> begin
          match Serial.profile_of_string contents with
          | Error msg -> Alcotest.fail msg
          | Ok q -> Alcotest.(check int) "count survives disk" 9 (Profile.block_count q 1)
        end)

let test_load_missing_file () =
  Alcotest.(check bool) "missing file is an error" true
    (Result.is_error (Serial.load ~path:"/nonexistent/wayplace.profile"))

(* The shipped order must be usable to rebuild the exact layout. *)
let test_order_rebuilds_layout () =
  let program = Codegen.generate Mibench.tiny in
  let graph = program.Codegen.graph in
  let profile = Tracer.profile program Tracer.Small in
  let compiled = Wayplace.compile graph profile in
  let order = Wayplace.Layout.Binary_layout.order compiled.Wayplace.layout in
  match Serial.order_of_string (Serial.order_to_string order) with
  | Error msg -> Alcotest.fail msg
  | Ok loaded ->
      let rebuilt =
        Wayplace.Layout.Binary_layout.of_order graph
          ~base:(Wayplace.Layout.Binary_layout.base compiled.Wayplace.layout)
          loaded
      in
      let same = ref true in
      for id = 0 to Wayplace.Cfg.Icfg.num_blocks graph - 1 do
        if
          Wayplace.Layout.Binary_layout.block_start rebuilt id
          <> Wayplace.Layout.Binary_layout.block_start compiled.Wayplace.layout id
        then same := false
      done;
      Alcotest.(check bool) "identical addresses" true !same

let () =
  Alcotest.run "serial"
    [
      ( "profile",
        [
          Alcotest.test_case "roundtrip" `Quick test_profile_roundtrip;
          Alcotest.test_case "roundtrip (generated)" `Quick test_profile_roundtrip_real;
          Alcotest.test_case "rejects malformed" `Quick test_profile_rejects;
        ] );
      ( "order",
        [
          Alcotest.test_case "roundtrip" `Quick test_order_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_order_rejects;
          Alcotest.test_case "rebuilds the layout" `Quick test_order_rebuilds_layout;
        ] );
      ( "files",
        [
          Alcotest.test_case "disk roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
        ] );
    ]
