(* Tests for the deterministic RNG, benchmark specs, the code
   generator and the trace walker. *)

module Rng = Wayplace.Workloads.Rng
module Spec = Wayplace.Workloads.Spec
module Mibench = Wayplace.Workloads.Mibench
module Codegen = Wayplace.Workloads.Codegen
module Tracer = Wayplace.Workloads.Tracer
module Icfg = Wayplace.Cfg.Icfg
module Profile = Wayplace.Cfg.Profile

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_rng_int_bound_errors () =
  let r = Rng.create 1 in
  Alcotest.(check bool) "zero bound" true
    (match Rng.int r 0 with (_ : int) -> false | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "int_in inverted" true
    (match Rng.int_in r ~min:5 ~max:1 with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"int stays in [0,bound)" ~count:300
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"float stays in [0,1)" ~count:200 QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Rng.float r in
        if v < 0.0 || v >= 1.0 then ok := false
      done;
      !ok)

let prop_rng_int_in_inclusive =
  QCheck.Test.make ~name:"int_in covers both endpoints" ~count:50
    QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let saw_min = ref false and saw_max = ref false in
      for _ = 1 to 2000 do
        match Rng.int_in r ~min:3 ~max:5 with
        | 3 -> saw_min := true
        | 5 -> saw_max := true
        | 4 -> ()
        | _ -> failwith "out of range"
      done;
      !saw_min && !saw_max)

let prop_rng_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:100
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 0 30) int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let test_rng_bool_probabilities () =
  let r = Rng.create 11 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split streams differ" true
    (Rng.next_int64 a <> Rng.next_int64 b)

(* --- Spec / Mibench --- *)

let test_mibench_has_23 () =
  Alcotest.(check int) "23 benchmarks (paper Section 5)" 23 (List.length Mibench.all)

let test_mibench_all_valid () =
  List.iter
    (fun spec ->
      match Spec.validate spec with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    (Mibench.tiny :: Mibench.all)

let test_mibench_names_unique () =
  let names = Mibench.names in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_mibench_find () =
  Alcotest.(check string) "find crc" "crc" (Mibench.find "crc").Spec.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Mibench.find "doom"))

let test_spec_validation_catches () =
  let base = Mibench.tiny in
  let invalid spec =
    match Spec.validate spec with Error _ -> true | Ok () -> false
  in
  Alcotest.(check bool) "no funcs" true (invalid { base with Spec.num_funcs = 0 });
  Alcotest.(check bool) "bad block range" true
    (invalid { base with Spec.blocks_per_func_min = 9; blocks_per_func_max = 3 });
  Alcotest.(check bool) "bad fraction" true
    (invalid { base with Spec.hot_func_fraction = 1.5 });
  Alcotest.(check bool) "mix too big" true
    (invalid { base with Spec.mem_ratio = 0.8; mac_ratio = 0.3 })

(* --- Codegen --- *)

let test_codegen_deterministic () =
  let a = Codegen.generate Mibench.tiny in
  let b = Codegen.generate Mibench.tiny in
  Alcotest.(check int) "same block count" (Icfg.num_blocks a.Codegen.graph)
    (Icfg.num_blocks b.Codegen.graph);
  Alcotest.(check bool) "same probabilities" true
    (a.Codegen.taken_prob = b.Codegen.taken_prob)

let test_codegen_rejects_invalid_spec () =
  Alcotest.(check bool) "invalid spec" true
    (match Codegen.generate { Mibench.tiny with Spec.num_funcs = 0 } with
    | (_ : Codegen.t) -> false
    | exception Invalid_argument _ -> true)

let test_codegen_calls_forward_only () =
  let p = Codegen.generate (Mibench.find "susan_c") in
  let graph = p.Codegen.graph in
  let ok = ref true in
  for id = 0 to Icfg.num_blocks graph - 1 do
    match Icfg.call_target graph id with
    | Some callee_entry ->
        let caller = (Icfg.block graph id).Wayplace.Cfg.Basic_block.func in
        let callee = (Icfg.block graph callee_entry).Wayplace.Cfg.Basic_block.func in
        if callee <= caller then ok := false
    | None -> ()
  done;
  Alcotest.(check bool) "call DAG is forward" true !ok

let test_codegen_main_is_entry () =
  let p = Codegen.generate Mibench.tiny in
  let graph = p.Codegen.graph in
  let entry_func = (Icfg.block graph (Icfg.entry graph)).Wayplace.Cfg.Basic_block.func in
  Alcotest.(check int) "entry in function 0" 0 entry_func

let test_codegen_branch_probs_in_range () =
  let p = Codegen.generate (Mibench.find "fft") in
  let graph = p.Codegen.graph in
  let ok = ref true in
  for id = 0 to Icfg.num_blocks graph - 1 do
    if
      Wayplace.Cfg.Basic_block.terminator (Icfg.block graph id)
      = Wayplace.Isa.Opcode.Branch
    then begin
      let prob = p.Codegen.taken_prob.(id) in
      if prob <= 0.0 || prob >= 1.0 then ok := false
    end
  done;
  Alcotest.(check bool) "branch probabilities in (0,1)" true !ok

let test_codegen_hot_main () =
  let p = Codegen.generate Mibench.tiny in
  Alcotest.(check bool) "main is hot" true p.Codegen.hot_funcs.(0);
  Alcotest.(check bool) "hot_block consistent" true (Codegen.hot_block p 0)

(* Whole-suite well-formedness is enforced by Icfg validation inside
   the builder, so generating every benchmark is itself a test. *)
let test_codegen_whole_suite () =
  List.iter (fun spec -> ignore (Codegen.generate spec)) Mibench.all

(* --- Tracer --- *)

let test_tracer_budget () =
  let p = Codegen.generate Mibench.tiny in
  let tr = Tracer.trace p Tracer.Large in
  Alcotest.(check int) "exactly the budget"
    Mibench.tiny.Spec.trace_blocks_large
    (Array.length tr.Tracer.blocks)

let test_tracer_deterministic () =
  let p = Codegen.generate Mibench.tiny in
  let a = Tracer.trace p Tracer.Large in
  let b = Tracer.trace p Tracer.Large in
  Alcotest.(check bool) "identical traces" true (a.Tracer.blocks = b.Tracer.blocks);
  Alcotest.(check int) "identical instr counts" a.Tracer.dynamic_instrs
    b.Tracer.dynamic_instrs

let test_tracer_inputs_differ () =
  let p = Codegen.generate Mibench.tiny in
  let small = Tracer.trace p Tracer.Small in
  let large = Tracer.trace p Tracer.Large in
  Alcotest.(check bool) "training and evaluation walks differ" true
    (small.Tracer.blocks <> large.Tracer.blocks)

let test_tracer_profile_matches_trace () =
  let p = Codegen.generate Mibench.tiny in
  let tr, prof = Tracer.trace_and_profile p Tracer.Small in
  let counted = Array.make (Icfg.num_blocks p.Codegen.graph) 0 in
  Array.iter (fun id -> counted.(id) <- counted.(id) + 1) tr.Tracer.blocks;
  let ok = ref true in
  Array.iteri (fun id c -> if Profile.block_count prof id <> c then ok := false) counted;
  Alcotest.(check bool) "profile equals trace histogram" true !ok;
  Alcotest.(check int) "dynamic instrs agree" tr.Tracer.dynamic_instrs
    (Profile.dynamic_instrs prof p.Codegen.graph)

let test_tracer_profile_standalone_agrees () =
  let p = Codegen.generate Mibench.tiny in
  let prof1 = Tracer.profile p Tracer.Small in
  let _, prof2 = Tracer.trace_and_profile p Tracer.Small in
  let ok = ref true in
  for id = 0 to Profile.num_blocks prof1 - 1 do
    if Profile.block_count prof1 id <> Profile.block_count prof2 id then
      ok := false
  done;
  Alcotest.(check bool) "profile = trace_and_profile" true !ok

let test_tracer_trace_is_walk () =
  (* Every consecutive pair in the trace must be a legal transition:
     a successor edge, a return (continuation resolved via the stack),
     or a restart at the entry. *)
  let p = Codegen.generate Mibench.tiny in
  let graph = p.Codegen.graph in
  let tr = Tracer.trace p Tracer.Small in
  let legal src dst =
    List.exists
      (fun (e : Wayplace.Cfg.Edge.t) -> e.dst = dst)
      (Icfg.successors graph src)
    || dst = Icfg.entry graph
    || Wayplace.Cfg.Basic_block.terminator (Icfg.block graph src)
       = Wayplace.Isa.Opcode.Return
  in
  let ok = ref true in
  for k = 0 to Array.length tr.Tracer.blocks - 2 do
    if not (legal tr.Tracer.blocks.(k) tr.Tracer.blocks.(k + 1)) then ok := false
  done;
  Alcotest.(check bool) "trace follows graph edges" true !ok

let test_perturbed_probs_bounded () =
  let p = Codegen.generate Mibench.tiny in
  let probs = Tracer.perturbed_probs p Tracer.Large in
  let base = p.Codegen.taken_prob in
  let ok = ref true in
  Array.iteri
    (fun i prob ->
      if prob < 0.02 -. 1e-9 || prob > 0.98 +. 1e-9 then ok := false;
      if abs_float (prob -. base.(i)) > 0.06 +. 1e-9 then ok := false)
    probs;
  Alcotest.(check bool) "perturbation bounded" true !ok

let test_perturbed_probs_differ_by_input () =
  let p = Codegen.generate (Mibench.find "crc") in
  let small = Tracer.perturbed_probs p Tracer.Small in
  let large = Tracer.perturbed_probs p Tracer.Large in
  Alcotest.(check bool) "inputs perturb differently" true (small <> large)

let () =
  Alcotest.run "workloads"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "bound errors" `Quick test_rng_int_bound_errors;
          Alcotest.test_case "bool rate" `Quick test_rng_bool_probabilities;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          QCheck_alcotest.to_alcotest prop_rng_int_bounds;
          QCheck_alcotest.to_alcotest prop_rng_float_bounds;
          QCheck_alcotest.to_alcotest prop_rng_int_in_inclusive;
          QCheck_alcotest.to_alcotest prop_rng_shuffle_permutes;
        ] );
      ( "mibench",
        [
          Alcotest.test_case "23 benchmarks" `Quick test_mibench_has_23;
          Alcotest.test_case "all specs valid" `Quick test_mibench_all_valid;
          Alcotest.test_case "names unique" `Quick test_mibench_names_unique;
          Alcotest.test_case "find" `Quick test_mibench_find;
          Alcotest.test_case "spec validation" `Quick test_spec_validation_catches;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "deterministic" `Quick test_codegen_deterministic;
          Alcotest.test_case "invalid spec" `Quick test_codegen_rejects_invalid_spec;
          Alcotest.test_case "forward call DAG" `Quick test_codegen_calls_forward_only;
          Alcotest.test_case "entry is main" `Quick test_codegen_main_is_entry;
          Alcotest.test_case "branch prob range" `Quick test_codegen_branch_probs_in_range;
          Alcotest.test_case "hot functions" `Quick test_codegen_hot_main;
          Alcotest.test_case "whole suite generates" `Slow test_codegen_whole_suite;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "budget respected" `Quick test_tracer_budget;
          Alcotest.test_case "deterministic" `Quick test_tracer_deterministic;
          Alcotest.test_case "inputs differ" `Quick test_tracer_inputs_differ;
          Alcotest.test_case "profile = histogram" `Quick test_tracer_profile_matches_trace;
          Alcotest.test_case "profile agreement" `Quick test_tracer_profile_standalone_agrees;
          Alcotest.test_case "trace follows edges" `Quick test_tracer_trace_is_walk;
          Alcotest.test_case "perturbation bounded" `Quick test_perturbed_probs_bounded;
          Alcotest.test_case "inputs perturb differently" `Quick test_perturbed_probs_differ_by_input;
        ] );
    ]
