(* Tests for chains, the chain builder, the weight-ordered placer and
   concrete address assignment. *)

module Isa = Wayplace.Isa
module Icfg = Wayplace.Cfg.Icfg
module Edge = Wayplace.Cfg.Edge
module Profile = Wayplace.Cfg.Profile
module Chain = Wayplace.Layout.Chain
module Chain_builder = Wayplace.Layout.Chain_builder
module Placer = Wayplace.Layout.Placer
module Binary_layout = Wayplace.Layout.Binary_layout

let alu = Isa.Instr.alu Isa.Opcode.Add
let branch = Isa.Instr.branch
let call = Isa.Instr.call
let ret = Isa.Instr.return

(* --- Chain --- *)

let test_chain_make () =
  let c = Chain.make ~blocks:[ 3; 1; 2 ] ~weight:7 in
  Alcotest.(check int) "length" 3 (Chain.length c);
  Alcotest.(check int) "first" 3 (Chain.first c)

let test_chain_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Chain.make: empty chain")
    (fun () -> ignore (Chain.make ~blocks:[] ~weight:0));
  Alcotest.check_raises "negative" (Invalid_argument "Chain.make: negative weight")
    (fun () -> ignore (Chain.make ~blocks:[ 1 ] ~weight:(-1)))

let test_chain_compare () =
  let heavy = Chain.make ~blocks:[ 5 ] ~weight:100 in
  let light = Chain.make ~blocks:[ 1 ] ~weight:10 in
  let light2 = Chain.make ~blocks:[ 0 ] ~weight:10 in
  Alcotest.(check bool) "heavy first" true (Chain.compare_by_weight heavy light < 0);
  Alcotest.(check bool) "ties by first block id" true
    (Chain.compare_by_weight light2 light < 0)

(* A hand-built two-function graph:

     b0 plain -ft-> b1 call(f1) -ft-> b2 branch(taken b4) -ft-> b3 ret
     b4 ret
     f1: b5 plain -ft-> b6 ret

   Expected chains: [b0;b1;b2;b3], [b4], [b5;b6]. *)
let build_graph () =
  let b = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func b ~name:"main" in
  let f1 = Icfg.Builder.add_func b ~name:"callee" in
  let b0 = Icfg.Builder.add_block b ~func:f0 [| alu; alu |] in
  let b1 = Icfg.Builder.add_block b ~func:f0 [| call |] in
  let b2 = Icfg.Builder.add_block b ~func:f0 [| branch |] in
  let b3 = Icfg.Builder.add_block b ~func:f0 [| ret |] in
  let b4 = Icfg.Builder.add_block b ~func:f0 [| ret |] in
  let b5 = Icfg.Builder.add_block b ~func:f1 [| alu; alu; alu |] in
  let b6 = Icfg.Builder.add_block b ~func:f1 [| ret |] in
  Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b1 ~dst:b5 Edge.Call_to;
  Icfg.Builder.add_edge b ~src:b1 ~dst:b2 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b2 ~dst:b4 Edge.Taken;
  Icfg.Builder.add_edge b ~src:b2 ~dst:b3 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b5 ~dst:b6 Edge.Fallthrough;
  Icfg.Builder.finish b

let profile_of graph weights =
  let p = Profile.create ~num_blocks:(Icfg.num_blocks graph) in
  List.iteri (fun id w -> Profile.record_block_n p id w) weights;
  p

(* --- Chain_builder --- *)

let test_chains_cover_all_blocks () =
  let graph = build_graph () in
  let p = profile_of graph [ 1; 1; 1; 1; 1; 1; 1 ] in
  let chains = Chain_builder.build graph p in
  let all = List.concat_map (fun (c : Chain.t) -> c.blocks) chains in
  Alcotest.(check int) "every block exactly once" (Icfg.num_blocks graph)
    (List.length (List.sort_uniq compare all));
  Alcotest.(check int) "no duplicates" (Icfg.num_blocks graph) (List.length all)

let test_chain_shapes () =
  let graph = build_graph () in
  let p = profile_of graph [ 1; 1; 1; 1; 1; 1; 1 ] in
  let chains = Chain_builder.build graph p in
  let sorted_blocks =
    List.sort compare (List.map (fun (c : Chain.t) -> c.blocks) chains)
  in
  Alcotest.(check (list (list int))) "chains follow fall-through paths"
    [ [ 0; 1; 2; 3 ]; [ 4 ]; [ 5; 6 ] ]
    sorted_blocks

let test_chain_weights_sum_dynamic_instrs () =
  let graph = build_graph () in
  (* b0 runs 10 times (2 instrs), b5 runs 7 times (3 instrs). *)
  let p = profile_of graph [ 10; 0; 0; 0; 0; 7; 0 ] in
  let chains = Chain_builder.build graph p in
  let main_chain = Chain_builder.chain_of_block chains 0 in
  let callee_chain = Chain_builder.chain_of_block chains 5 in
  Alcotest.(check int) "main chain weight" 20 main_chain.Chain.weight;
  Alcotest.(check int) "callee chain weight" 21 callee_chain.Chain.weight

let test_chain_of_block_missing () =
  let graph = build_graph () in
  let p = profile_of graph [] in
  let chains = Chain_builder.build graph p in
  Alcotest.check_raises "not found" Not_found (fun () ->
      ignore (Chain_builder.chain_of_block chains 99))

(* --- Placer --- *)

let test_place_heaviest_first () =
  let graph = build_graph () in
  let p = profile_of graph [ 1; 1; 1; 1; 0; 100; 0 ] in
  let order = Placer.place graph p in
  Alcotest.(check int) "hottest chain first" 5 order.(0);
  Alcotest.(check int) "then its tail" 6 order.(1)

let test_place_admissible () =
  let graph = build_graph () in
  let p = profile_of graph [ 1; 2; 3; 4; 5; 6; 7 ] in
  let order = Placer.place graph p in
  Alcotest.(check bool) "admissible" true (Placer.is_admissible graph order = Ok ())

let test_original_admissible () =
  let graph = build_graph () in
  Alcotest.(check bool) "original admissible" true
    (Placer.is_admissible graph (Placer.original graph) = Ok ())

let test_is_admissible_rejects () =
  let graph = build_graph () in
  let is_error order =
    match Placer.is_admissible graph order with Error _ -> true | Ok () -> false
  in
  Alcotest.(check bool) "broken fall-through" true (is_error [| 1; 0; 2; 3; 4; 5; 6 |]);
  Alcotest.(check bool) "duplicate block" true (is_error [| 0; 0; 2; 3; 4; 5; 6 |]);
  Alcotest.(check bool) "wrong length" true (is_error [| 0; 1 |])

(* Property: for every MiBench benchmark, both the original and the
   placed orders are admissible. *)
let prop_place_mibench =
  let specs = Array.of_list Wayplace.Workloads.Mibench.all in
  QCheck.Test.make ~name:"placement admissible on the whole suite"
    ~count:(Array.length specs)
    QCheck.(int_bound (Array.length specs - 1))
    (fun i ->
      let program = Wayplace.Workloads.Codegen.generate specs.(i) in
      let graph = program.Wayplace.Workloads.Codegen.graph in
      let profile =
        Wayplace.Workloads.Tracer.profile program Wayplace.Workloads.Tracer.Small
      in
      let order = Placer.place graph profile in
      Placer.is_admissible graph order = Ok ()
      && Placer.is_admissible graph (Placer.original graph) = Ok ())

(* --- Binary_layout --- *)

let test_layout_addresses () =
  let graph = build_graph () in
  let order = Placer.original graph in
  let layout = Binary_layout.of_order graph ~base:0x1000 order in
  Alcotest.(check int) "base" 0x1000 (Binary_layout.base layout);
  Alcotest.(check int) "b0 start" 0x1000 (Binary_layout.block_start layout 0);
  Alcotest.(check int) "b1 start" 0x1008 (Binary_layout.block_start layout 1);
  Alcotest.(check int) "instr addr" 0x1004 (Binary_layout.instr_addr layout 0 1);
  Alcotest.(check int) "code size" (Icfg.total_static_bytes graph)
    (Binary_layout.code_size_bytes layout);
  Alcotest.(check int) "position" 1 (Binary_layout.position layout 1)

let test_layout_block_at () =
  let graph = build_graph () in
  let layout = Binary_layout.of_order graph ~base:0 (Placer.original graph) in
  Alcotest.(check (option int)) "first byte" (Some 0) (Binary_layout.block_at layout 0);
  Alcotest.(check (option int)) "inside b0" (Some 0) (Binary_layout.block_at layout 7);
  Alcotest.(check (option int)) "first of b1" (Some 1) (Binary_layout.block_at layout 8);
  Alcotest.(check (option int)) "past the end" None
    (Binary_layout.block_at layout (Binary_layout.code_size_bytes layout));
  Alcotest.(check (option int)) "before base" None (Binary_layout.block_at layout (-1))

let test_layout_instr_addr_bounds () =
  let graph = build_graph () in
  let layout = Binary_layout.of_order graph ~base:0 (Placer.original graph) in
  Alcotest.(check bool) "out of range" true
    (match Binary_layout.instr_addr layout 0 2 with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true)

let test_layout_rejects_inadmissible () =
  let graph = build_graph () in
  Alcotest.(check bool) "inadmissible rejected" true
    (match Binary_layout.of_order graph ~base:0 [| 1; 0; 2; 3; 4; 5; 6 |] with
    | (_ : Binary_layout.t) -> false
    | exception Invalid_argument _ -> true)

let prop_layout_contiguous =
  let specs = Array.of_list Wayplace.Workloads.Mibench.all in
  QCheck.Test.make ~name:"blocks are packed back to back" ~count:6
    QCheck.(int_bound (Array.length specs - 1))
    (fun i ->
      let program = Wayplace.Workloads.Codegen.generate specs.(i) in
      let graph = program.Wayplace.Workloads.Codegen.graph in
      let profile =
        Wayplace.Workloads.Tracer.profile program Wayplace.Workloads.Tracer.Small
      in
      let layout =
        Binary_layout.of_order graph ~base:0x8000 (Placer.place graph profile)
      in
      let order = Binary_layout.order layout in
      let ok = ref true in
      let cursor = ref 0x8000 in
      Array.iter
        (fun id ->
          if Binary_layout.block_start layout id <> !cursor then ok := false;
          cursor :=
            !cursor + Wayplace.Cfg.Basic_block.size_bytes (Icfg.block graph id))
        order;
      !ok && !cursor - 0x8000 = Binary_layout.code_size_bytes layout)

(* --- Listing --- *)

module Listing = Wayplace.Layout.Listing

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_listing_contents () =
  let graph = build_graph () in
  let layout = Binary_layout.of_order graph ~base:0x1000 (Placer.original graph) in
  let text = Listing.to_string ~graph ~layout () in
  Alcotest.(check bool) "has main's entry label" true (contains text "<main:B0>");
  Alcotest.(check bool) "has the callee label" true (contains text "<callee:B5>");
  Alcotest.(check bool) "call resolves to the callee" true
    (contains text "bl <callee:B5>");
  Alcotest.(check bool) "branch resolves to its target" true
    (contains text "b.cond <main:B4>");
  Alcotest.(check bool) "addresses are printed" true (contains text "0x00001000")

let test_listing_limit () =
  let graph = build_graph () in
  let layout = Binary_layout.of_order graph ~base:0 (Placer.original graph) in
  let text = Listing.to_string ~limit_blocks:2 ~graph ~layout () in
  Alcotest.(check bool) "elision note" true (contains text "5 more blocks elided");
  Alcotest.(check bool) "third block absent" false (contains text "<main:B2>")

let test_listing_block_count () =
  let graph = build_graph () in
  let layout = Binary_layout.of_order graph ~base:0 (Placer.original graph) in
  let text = Listing.to_string ~graph ~layout () in
  (* One label line per block. *)
  let labels = ref 0 in
  String.iter (fun c -> if c = '<' then incr labels) text;
  Alcotest.(check bool) "at least one label per block" true
    (!labels >= Icfg.num_blocks graph)

let () =
  Alcotest.run "layout"
    [
      ( "chain",
        [
          Alcotest.test_case "make" `Quick test_chain_make;
          Alcotest.test_case "validation" `Quick test_chain_invalid;
          Alcotest.test_case "weight ordering" `Quick test_chain_compare;
        ] );
      ( "chain_builder",
        [
          Alcotest.test_case "covers all blocks" `Quick test_chains_cover_all_blocks;
          Alcotest.test_case "chain shapes" `Quick test_chain_shapes;
          Alcotest.test_case "weights" `Quick test_chain_weights_sum_dynamic_instrs;
          Alcotest.test_case "chain_of_block missing" `Quick test_chain_of_block_missing;
        ] );
      ( "placer",
        [
          Alcotest.test_case "heaviest first" `Quick test_place_heaviest_first;
          Alcotest.test_case "placed admissible" `Quick test_place_admissible;
          Alcotest.test_case "original admissible" `Quick test_original_admissible;
          Alcotest.test_case "rejects bad orders" `Quick test_is_admissible_rejects;
          QCheck_alcotest.to_alcotest prop_place_mibench;
        ] );
      ( "listing",
        [
          Alcotest.test_case "contents" `Quick test_listing_contents;
          Alcotest.test_case "limit" `Quick test_listing_limit;
          Alcotest.test_case "labels" `Quick test_listing_block_count;
        ] );
      ( "binary_layout",
        [
          Alcotest.test_case "addresses" `Quick test_layout_addresses;
          Alcotest.test_case "block_at" `Quick test_layout_block_at;
          Alcotest.test_case "instr bounds" `Quick test_layout_instr_addr_bounds;
          Alcotest.test_case "rejects inadmissible" `Quick test_layout_rejects_inadmissible;
          QCheck_alcotest.to_alcotest prop_layout_contiguous;
        ] );
    ]
