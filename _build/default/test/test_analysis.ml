(* Tests for dominators and natural-loop detection. *)

module Isa = Wayplace.Isa
module Icfg = Wayplace.Cfg.Icfg
module Edge = Wayplace.Cfg.Edge
module Analysis = Wayplace.Cfg.Analysis

let alu = Isa.Instr.alu Isa.Opcode.Add
let branch = Isa.Instr.branch
let jump = Isa.Instr.jump
let ret = Isa.Instr.return

(* A function with one loop and an if-diamond inside it:

     b0 entry (plain)
     b1 loop header (plain)
     b2 cond (branch: taken -> b4, ft -> b3)
     b3 then (jump -> b5)
     b4 else (plain, ft -> b5)
     b5 latch (branch: taken -> b1, ft -> b6)
     b6 ret                                                        *)
let build_loop_graph () =
  let b = Icfg.Builder.create () in
  let f = Icfg.Builder.add_func b ~name:"f" in
  let b0 = Icfg.Builder.add_block b ~func:f [| alu |] in
  let b1 = Icfg.Builder.add_block b ~func:f [| alu |] in
  let b2 = Icfg.Builder.add_block b ~func:f [| branch |] in
  let b3 = Icfg.Builder.add_block b ~func:f [| jump |] in
  let b4 = Icfg.Builder.add_block b ~func:f [| alu |] in
  let b5 = Icfg.Builder.add_block b ~func:f [| branch |] in
  let b6 = Icfg.Builder.add_block b ~func:f [| ret |] in
  Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b1 ~dst:b2 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b2 ~dst:b4 Edge.Taken;
  Icfg.Builder.add_edge b ~src:b2 ~dst:b3 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b3 ~dst:b5 Edge.Taken;
  Icfg.Builder.add_edge b ~src:b4 ~dst:b5 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b5 ~dst:b1 Edge.Taken;
  Icfg.Builder.add_edge b ~src:b5 ~dst:b6 Edge.Fallthrough;
  (Icfg.Builder.finish b, (b0, b1, b2, b3, b4, b5, b6))

let test_rpo_starts_at_entry () =
  let graph, (b0, _, _, _, _, _, _) = build_loop_graph () in
  let rpo = Analysis.reverse_postorder graph ~entry:b0 in
  Alcotest.(check int) "entry first" b0 rpo.(0);
  Alcotest.(check int) "all reachable" 7 (Array.length rpo)

let test_rpo_respects_order () =
  let graph, (b0, b1, b2, _, _, b5, b6) = build_loop_graph () in
  let rpo = Analysis.reverse_postorder graph ~entry:b0 in
  let pos id =
    let rec go i = if rpo.(i) = id then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "header before latch" true (pos b1 < pos b5);
  Alcotest.(check bool) "cond before latch" true (pos b2 < pos b5);
  Alcotest.(check bool) "latch before exit or after" true (pos b6 > pos b1)

let test_idoms () =
  let graph, (b0, b1, b2, b3, b4, b5, b6) = build_loop_graph () in
  let idoms = Analysis.immediate_dominators graph ~entry:b0 in
  let idom id = List.assoc id idoms in
  Alcotest.(check int) "b1's idom" b0 (idom b1);
  Alcotest.(check int) "b2's idom" b1 (idom b2);
  Alcotest.(check int) "b3's idom" b2 (idom b3);
  Alcotest.(check int) "b4's idom" b2 (idom b4);
  Alcotest.(check int) "join's idom is the cond" b2 (idom b5);
  Alcotest.(check int) "exit's idom" b5 (idom b6)

let test_dominates () =
  let graph, (b0, b1, b2, b3, _, b5, b6) = build_loop_graph () in
  let dom = Analysis.dominates graph ~entry:b0 in
  Alcotest.(check bool) "entry dominates all" true (dom b0 b6);
  Alcotest.(check bool) "self domination" true (dom b2 b2);
  Alcotest.(check bool) "header dominates latch" true (dom b1 b5);
  Alcotest.(check bool) "then-arm does not dominate join" false (dom b3 b5);
  Alcotest.(check bool) "no reverse domination" false (dom b6 b0)

let test_natural_loop () =
  let graph, (b0, b1, b2, b3, b4, b5, _) = build_loop_graph () in
  match Analysis.natural_loops graph ~entry:b0 with
  | [ loop ] ->
      Alcotest.(check int) "header" b1 loop.Analysis.header;
      Alcotest.(check (list int)) "body" [ b1; b2; b3; b4; b5 ] loop.Analysis.blocks;
      Alcotest.(check (list (pair int int))) "back edge" [ (b5, b1) ]
        loop.Analysis.back_edges
  | loops -> Alcotest.failf "expected one loop, got %d" (List.length loops)

let test_loop_depths () =
  let graph, (b0, b1, _, _, _, _, b6) = build_loop_graph () in
  Alcotest.(check int) "entry depth 0" 0 (Analysis.loop_depth graph ~entry:b0 b0);
  Alcotest.(check int) "header depth 1" 1 (Analysis.loop_depth graph ~entry:b0 b1);
  Alcotest.(check int) "exit depth 0" 0 (Analysis.loop_depth graph ~entry:b0 b6)

(* The generator's loop structure must be visible to the analysis:
   generated functions with max_loop_depth >= 1 contain natural loops,
   and the nesting never exceeds the spec (plus the driver loop). *)
let test_generated_loops () =
  let spec = Wayplace.Workloads.Mibench.find "fft" in
  let program = Wayplace.Workloads.Codegen.generate spec in
  let graph = program.Wayplace.Workloads.Codegen.graph in
  let total_loops = ref 0 in
  let max_depth = ref 0 in
  Array.iter
    (fun (f : Wayplace.Cfg.Func.t) ->
      let loops = Analysis.natural_loops graph ~entry:f.Wayplace.Cfg.Func.entry in
      total_loops := !total_loops + List.length loops;
      List.iter
        (fun (l : Analysis.loop) ->
          max_depth :=
            max !max_depth
              (Analysis.loop_depth graph ~entry:f.Wayplace.Cfg.Func.entry
                 l.Analysis.header))
        loops)
    (Icfg.funcs graph);
  Alcotest.(check bool) "benchmark has loops" true (!total_loops > 10);
  Alcotest.(check bool) "nesting bounded by spec + driver" true
    (!max_depth <= spec.Wayplace.Workloads.Spec.max_loop_depth + 1)

let test_no_loops_in_straight_line () =
  let b = Icfg.Builder.create () in
  let f = Icfg.Builder.add_func b ~name:"f" in
  let b0 = Icfg.Builder.add_block b ~func:f [| alu |] in
  let b1 = Icfg.Builder.add_block b ~func:f [| ret |] in
  Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Fallthrough;
  let graph = Icfg.Builder.finish b in
  Alcotest.(check int) "no loops" 0
    (List.length (Analysis.natural_loops graph ~entry:b0))

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_function_summary () =
  let graph, _ = build_loop_graph () in
  let f = Icfg.func graph 0 in
  let summary = Analysis.function_summary graph f in
  Alcotest.(check bool) "mentions one loop" true
    (contains_substring summary "1 loops");
  Alcotest.(check bool) "mentions nesting" true
    (contains_substring summary "max nesting 1")

let () =
  Alcotest.run "analysis"
    [
      ( "dominators",
        [
          Alcotest.test_case "rpo entry" `Quick test_rpo_starts_at_entry;
          Alcotest.test_case "rpo ordering" `Quick test_rpo_respects_order;
          Alcotest.test_case "immediate dominators" `Quick test_idoms;
          Alcotest.test_case "dominates" `Quick test_dominates;
        ] );
      ( "loops",
        [
          Alcotest.test_case "natural loop" `Quick test_natural_loop;
          Alcotest.test_case "loop depths" `Quick test_loop_depths;
          Alcotest.test_case "generated benchmarks" `Quick test_generated_loops;
          Alcotest.test_case "straight line" `Quick test_no_loops_in_straight_line;
          Alcotest.test_case "summary" `Quick test_function_summary;
        ] );
    ]
