(* Tests for basic blocks, edges, the ICFG builder/validator and
   profiles. *)

module Isa = Wayplace.Isa
module Cfg = Wayplace.Cfg
module BB = Wayplace.Cfg.Basic_block
module Icfg = Wayplace.Cfg.Icfg
module Edge = Wayplace.Cfg.Edge
module Profile = Wayplace.Cfg.Profile

let alu = Isa.Instr.alu Isa.Opcode.Add
let branch = Isa.Instr.branch
let jump = Isa.Instr.jump
let call = Isa.Instr.call
let ret = Isa.Instr.return

(* --- Basic_block --- *)

let test_block_make () =
  let b = BB.make ~id:3 ~func:1 ~instrs:[| alu; alu; branch |] in
  Alcotest.(check int) "size" 3 (BB.size_instrs b);
  Alcotest.(check int) "bytes" 12 (BB.size_bytes b);
  Alcotest.(check bool) "terminator" true (BB.terminator b = Isa.Opcode.Branch)

let test_block_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Basic_block.make: empty block")
    (fun () -> ignore (BB.make ~id:0 ~func:0 ~instrs:[||]))

let test_block_control_middle () =
  Alcotest.check_raises "control in middle"
    (Invalid_argument "Basic_block.make: control instruction before block end")
    (fun () -> ignore (BB.make ~id:0 ~func:0 ~instrs:[| branch; alu |]))

let test_falls_through () =
  let mk instrs = BB.make ~id:0 ~func:0 ~instrs in
  Alcotest.(check bool) "plain" true (BB.falls_through (mk [| alu |]));
  Alcotest.(check bool) "branch" true (BB.falls_through (mk [| branch |]));
  Alcotest.(check bool) "call" true (BB.falls_through (mk [| call |]));
  Alcotest.(check bool) "jump" false (BB.falls_through (mk [| jump |]));
  Alcotest.(check bool) "return" false (BB.falls_through (mk [| ret |]))

(* --- Edge --- *)

let test_edge_layout_constraint () =
  let e kind = Edge.make ~src:0 ~dst:1 kind in
  Alcotest.(check bool) "fallthrough" true (Edge.is_layout_constraint (e Edge.Fallthrough));
  Alcotest.(check bool) "taken" false (Edge.is_layout_constraint (e Edge.Taken));
  Alcotest.(check bool) "call" false (Edge.is_layout_constraint (e Edge.Call_to))

(* --- Icfg builder helpers --- *)

(* A two-function program:
     f0: b0(alu, fallthrough) b1(branch: taken->b0? no: taken->b3 ft->b2)
         b2(call f1, ft b3) b3(ret)
     f1: b4(alu ft) b5(ret) *)
let build_valid () =
  let b = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func b ~name:"main" in
  let f1 = Icfg.Builder.add_func b ~name:"helper" in
  let b0 = Icfg.Builder.add_block b ~func:f0 [| alu; alu |] in
  let b1 = Icfg.Builder.add_block b ~func:f0 [| alu; branch |] in
  let b2 = Icfg.Builder.add_block b ~func:f0 [| call |] in
  let b3 = Icfg.Builder.add_block b ~func:f0 [| ret |] in
  let b4 = Icfg.Builder.add_block b ~func:f1 [| alu |] in
  let b5 = Icfg.Builder.add_block b ~func:f1 [| ret |] in
  Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b1 ~dst:b3 Edge.Taken;
  Icfg.Builder.add_edge b ~src:b1 ~dst:b2 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b2 ~dst:b4 Edge.Call_to;
  Icfg.Builder.add_edge b ~src:b2 ~dst:b3 Edge.Fallthrough;
  Icfg.Builder.add_edge b ~src:b4 ~dst:b5 Edge.Fallthrough;
  (Icfg.Builder.finish b, (b0, b1, b2, b3, b4, b5))

let test_builder_valid () =
  let graph, (b0, b1, b2, b3, b4, _b5) = build_valid () in
  Alcotest.(check int) "blocks" 6 (Icfg.num_blocks graph);
  Alcotest.(check int) "funcs" 2 (Icfg.num_funcs graph);
  Alcotest.(check int) "entry" b0 (Icfg.entry graph);
  Alcotest.(check (option int)) "fallthrough" (Some b1) (Icfg.fallthrough_succ graph b0);
  Alcotest.(check (option int)) "taken" (Some b3) (Icfg.taken_succ graph b1);
  Alcotest.(check (option int)) "call target" (Some b4) (Icfg.call_target graph b2);
  Alcotest.(check (option int)) "return no succ" None (Icfg.fallthrough_succ graph b3);
  Alcotest.(check int) "static instrs" 8 (Icfg.total_static_instrs graph);
  Alcotest.(check int) "static bytes" 32 (Icfg.total_static_bytes graph)

let test_builder_original_order () =
  let graph, _ = build_valid () in
  Alcotest.(check (list int)) "identity order" [ 0; 1; 2; 3; 4; 5 ]
    (Array.to_list (Icfg.original_order graph))

let expect_invalid name build =
  Alcotest.(check bool) name true
    (match build () with
    | (_ : Icfg.t) -> false
    | exception Invalid_argument _ -> true)

let test_branch_needs_both_edges () =
  expect_invalid "branch without taken" (fun () ->
      let b = Icfg.Builder.create () in
      let f = Icfg.Builder.add_func b ~name:"f" in
      let b0 = Icfg.Builder.add_block b ~func:f [| branch |] in
      let b1 = Icfg.Builder.add_block b ~func:f [| ret |] in
      Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Fallthrough;
      Icfg.Builder.finish b)

let test_jump_needs_taken_only () =
  expect_invalid "jump with fallthrough" (fun () ->
      let b = Icfg.Builder.create () in
      let f = Icfg.Builder.add_func b ~name:"f" in
      let b0 = Icfg.Builder.add_block b ~func:f [| jump |] in
      let b1 = Icfg.Builder.add_block b ~func:f [| ret |] in
      Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Taken;
      Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Fallthrough;
      Icfg.Builder.finish b)

let test_return_no_edges () =
  expect_invalid "return with edge" (fun () ->
      let b = Icfg.Builder.create () in
      let f = Icfg.Builder.add_func b ~name:"f" in
      let b0 = Icfg.Builder.add_block b ~func:f [| ret |] in
      let b1 = Icfg.Builder.add_block b ~func:f [| ret |] in
      Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Fallthrough;
      Icfg.Builder.finish b)

let test_call_to_non_entry () =
  expect_invalid "call to non-entry" (fun () ->
      let b = Icfg.Builder.create () in
      let f = Icfg.Builder.add_func b ~name:"f" in
      let b0 = Icfg.Builder.add_block b ~func:f [| call |] in
      let b1 = Icfg.Builder.add_block b ~func:f [| alu |] in
      let b2 = Icfg.Builder.add_block b ~func:f [| ret |] in
      (* call edge to b1, which is not a function entry *)
      Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Call_to;
      Icfg.Builder.add_edge b ~src:b0 ~dst:b1 Edge.Fallthrough;
      Icfg.Builder.add_edge b ~src:b1 ~dst:b2 Edge.Fallthrough;
      Icfg.Builder.finish b)

let test_double_fallthrough_into_block () =
  expect_invalid "two fall-throughs into one block" (fun () ->
      let b = Icfg.Builder.create () in
      let f = Icfg.Builder.add_func b ~name:"f" in
      let b0 = Icfg.Builder.add_block b ~func:f [| alu |] in
      let b1 = Icfg.Builder.add_block b ~func:f [| alu |] in
      let b2 = Icfg.Builder.add_block b ~func:f [| ret |] in
      Icfg.Builder.add_edge b ~src:b0 ~dst:b2 Edge.Fallthrough;
      Icfg.Builder.add_edge b ~src:b1 ~dst:b2 Edge.Fallthrough;
      Icfg.Builder.finish b)

let test_empty_function_rejected () =
  expect_invalid "empty function" (fun () ->
      let b = Icfg.Builder.create () in
      let f = Icfg.Builder.add_func b ~name:"f" in
      let _ = Icfg.Builder.add_func b ~name:"empty" in
      let b0 = Icfg.Builder.add_block b ~func:f [| ret |] in
      ignore b0;
      Icfg.Builder.finish b)

let test_plain_block_needs_fallthrough () =
  expect_invalid "plain block with no successor" (fun () ->
      let b = Icfg.Builder.create () in
      let f = Icfg.Builder.add_func b ~name:"f" in
      let _b0 = Icfg.Builder.add_block b ~func:f [| alu |] in
      Icfg.Builder.finish b)

(* --- Profile --- *)

let test_profile_counts () =
  let p = Profile.create ~num_blocks:4 in
  Profile.record_block p 1;
  Profile.record_block p 1;
  Profile.record_block_n p 3 10;
  Alcotest.(check int) "b0" 0 (Profile.block_count p 0);
  Alcotest.(check int) "b1" 2 (Profile.block_count p 1);
  Alcotest.(check int) "b3" 10 (Profile.block_count p 3);
  Alcotest.(check int) "num blocks" 4 (Profile.num_blocks p)

let test_profile_negative () =
  let p = Profile.create ~num_blocks:1 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Profile.record_block_n: negative count") (fun () ->
      Profile.record_block_n p 0 (-1))

let test_profile_dynamic_instrs () =
  let graph, (b0, b1, _, _, _, _) = build_valid () in
  let p = Profile.create ~num_blocks:(Icfg.num_blocks graph) in
  Profile.record_block_n p b0 5;
  (* b0 has 2 instrs *)
  Profile.record_block_n p b1 3;
  (* b1 has 2 instrs *)
  Alcotest.(check int) "dynamic" 16 (Profile.dynamic_instrs p graph);
  Alcotest.(check int) "per block" 10 (Profile.block_dynamic_instrs p graph b0)

let test_profile_hottest_first () =
  let p = Profile.create ~num_blocks:4 in
  Profile.record_block_n p 2 100;
  Profile.record_block_n p 0 50;
  Profile.record_block_n p 3 50;
  Alcotest.(check (list int)) "order with id ties" [ 2; 0; 3; 1 ]
    (Array.to_list (Profile.hottest_first p))

let test_profile_coverage () =
  let graph, (b0, _, _, _, _, _) = build_valid () in
  let p = Profile.create ~num_blocks:(Icfg.num_blocks graph) in
  Profile.record_block_n p b0 100;
  Alcotest.(check (float 0.0001)) "one hot block fully covers" 1.0
    (Profile.coverage p graph ~fraction_of_blocks:0.2);
  Alcotest.(check (float 0.0001)) "zero fraction covers nothing" 0.0
    (Profile.coverage p graph ~fraction_of_blocks:0.0);
  Alcotest.check_raises "fraction range"
    (Invalid_argument "Profile.coverage: fraction out of [0,1]") (fun () ->
      ignore (Profile.coverage p graph ~fraction_of_blocks:1.5))

let test_profile_scale () =
  let p = Profile.create ~num_blocks:2 in
  Profile.record_block_n p 0 3;
  let q = Profile.scale p 4 in
  Alcotest.(check int) "scaled" 12 (Profile.block_count q 0);
  Alcotest.(check int) "original untouched" 3 (Profile.block_count p 0)

let prop_coverage_monotone =
  QCheck.Test.make ~name:"coverage is monotone in the fraction" ~count:50
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (a, b) ->
      let graph, _ = build_valid () in
      let p = Profile.create ~num_blocks:(Icfg.num_blocks graph) in
      Profile.record_block_n p 0 (a + 1);
      Profile.record_block_n p 4 (b + 1);
      let c1 = Profile.coverage p graph ~fraction_of_blocks:0.3 in
      let c2 = Profile.coverage p graph ~fraction_of_blocks:0.8 in
      c1 <= c2 +. 1e-9)

let () =
  Alcotest.run "cfg"
    [
      ( "basic_block",
        [
          Alcotest.test_case "make" `Quick test_block_make;
          Alcotest.test_case "rejects empty" `Quick test_block_empty;
          Alcotest.test_case "rejects early control" `Quick test_block_control_middle;
          Alcotest.test_case "falls_through" `Quick test_falls_through;
        ] );
      ( "edge",
        [ Alcotest.test_case "layout constraints" `Quick test_edge_layout_constraint ] );
      ( "icfg",
        [
          Alcotest.test_case "valid graph" `Quick test_builder_valid;
          Alcotest.test_case "original order" `Quick test_builder_original_order;
          Alcotest.test_case "branch edge check" `Quick test_branch_needs_both_edges;
          Alcotest.test_case "jump edge check" `Quick test_jump_needs_taken_only;
          Alcotest.test_case "return edge check" `Quick test_return_no_edges;
          Alcotest.test_case "call target check" `Quick test_call_to_non_entry;
          Alcotest.test_case "unique fall-through pred" `Quick test_double_fallthrough_into_block;
          Alcotest.test_case "empty function" `Quick test_empty_function_rejected;
          Alcotest.test_case "plain block successor" `Quick test_plain_block_needs_fallthrough;
        ] );
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_profile_counts;
          Alcotest.test_case "negative count" `Quick test_profile_negative;
          Alcotest.test_case "dynamic instrs" `Quick test_profile_dynamic_instrs;
          Alcotest.test_case "hottest first" `Quick test_profile_hottest_first;
          Alcotest.test_case "coverage" `Quick test_profile_coverage;
          Alcotest.test_case "scale" `Quick test_profile_scale;
          QCheck_alcotest.to_alcotest prop_coverage_monotone;
        ] );
    ]
