(* Tests for the I-TLB with way-placement bits and the way-hint bit. *)

module Tlb = Wayplace.Tlb.Tlb
module Way_hint = Wayplace.Tlb.Way_hint

let wp_below limit page = page < limit

let test_tlb_create_validation () =
  let invalid f = match f () with (_ : Tlb.t) -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "zero entries" true
    (invalid (fun () -> Tlb.create ~entries:0 ~page_bytes:1024));
  Alcotest.(check bool) "bad page size" true
    (invalid (fun () -> Tlb.create ~entries:4 ~page_bytes:1000))

let test_tlb_miss_then_hit () =
  let t = Tlb.create ~entries:4 ~page_bytes:1024 in
  let first = Tlb.lookup t 0x1234 ~wp_bit_of_page:(wp_below 0x2000) in
  Alcotest.(check bool) "cold miss" false first.Tlb.hit;
  Alcotest.(check bool) "wp bit set by the OS" true first.Tlb.way_placed;
  let second = Tlb.lookup t 0x12FF ~wp_bit_of_page:(wp_below 0x2000) in
  Alcotest.(check bool) "same page hits" true second.Tlb.hit;
  Alcotest.(check bool) "wp bit remembered" true second.Tlb.way_placed;
  Alcotest.(check int) "one entry" 1 (Tlb.valid_entries t)

let test_tlb_wp_bit_false () =
  let t = Tlb.create ~entries:4 ~page_bytes:1024 in
  let r = Tlb.lookup t 0x9000 ~wp_bit_of_page:(wp_below 0x2000) in
  Alcotest.(check bool) "outside the area" false r.Tlb.way_placed

let test_tlb_page_base () =
  let t = Tlb.create ~entries:4 ~page_bytes:1024 in
  Alcotest.(check int) "page base" 0x1400 (Tlb.page_base t 0x17FF)

let test_tlb_round_robin_eviction () =
  let t = Tlb.create ~entries:2 ~page_bytes:1024 in
  let lookup addr = ignore (Tlb.lookup t addr ~wp_bit_of_page:(fun _ -> false)) in
  lookup 0x0000;
  lookup 0x0400;
  (* Third page evicts the first (round robin). *)
  lookup 0x0800;
  let r = Tlb.lookup t 0x0000 ~wp_bit_of_page:(fun _ -> false) in
  Alcotest.(check bool) "first page was evicted" false r.Tlb.hit

let test_tlb_flush () =
  let t = Tlb.create ~entries:4 ~page_bytes:1024 in
  ignore (Tlb.lookup t 0x0 ~wp_bit_of_page:(fun _ -> true));
  Tlb.flush t;
  Alcotest.(check int) "empty" 0 (Tlb.valid_entries t);
  let r = Tlb.lookup t 0x0 ~wp_bit_of_page:(fun _ -> false) in
  Alcotest.(check bool) "stale wp bit gone after flush" false r.Tlb.way_placed

let test_tlb_wp_callback_gets_page_base () =
  let t = Tlb.create ~entries:4 ~page_bytes:1024 in
  let seen = ref (-1) in
  ignore
    (Tlb.lookup t 0x17FF ~wp_bit_of_page:(fun page ->
         seen := page;
         false));
  Alcotest.(check int) "callback argument is the page base" 0x1400 !seen

(* --- Way_hint --- *)

let test_hint_initial () =
  let h = Way_hint.create () in
  Alcotest.(check bool) "starts predicting normal" false (Way_hint.predict h)

let test_hint_verdicts () =
  let h = Way_hint.create () in
  (* false -> actual true: missed saving, hint becomes true. *)
  Alcotest.(check bool) "missed saving" true
    (Way_hint.resolve h ~actual:true = Way_hint.Missed_saving);
  Alcotest.(check bool) "hint updated" true (Way_hint.predict h);
  (* true -> actual true: correct way-placed. *)
  Alcotest.(check bool) "correct wp" true
    (Way_hint.resolve h ~actual:true = Way_hint.Correct_way_placed);
  (* true -> actual false: needs re-access. *)
  Alcotest.(check bool) "re-access" true
    (Way_hint.resolve h ~actual:false = Way_hint.Needs_reaccess);
  (* false -> actual false: correct normal. *)
  Alcotest.(check bool) "correct normal" true
    (Way_hint.resolve h ~actual:false = Way_hint.Correct_normal)

let test_hint_reset () =
  let h = Way_hint.create () in
  ignore (Way_hint.resolve h ~actual:true);
  Way_hint.reset h;
  Alcotest.(check bool) "reset to normal" false (Way_hint.predict h)

(* Property: the hint bit is exactly "last actual", so on any sequence
   the number of mispredicts equals the number of transitions. *)
let prop_hint_transitions =
  QCheck.Test.make ~name:"mispredicts = transitions" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) bool)
    (fun actuals ->
      let h = Way_hint.create () in
      let mispredicts =
        List.fold_left
          (fun acc actual ->
            match Way_hint.resolve h ~actual with
            | Way_hint.Missed_saving | Way_hint.Needs_reaccess -> acc + 1
            | Way_hint.Correct_way_placed | Way_hint.Correct_normal -> acc)
          0 actuals
      in
      let transitions =
        fst
          (List.fold_left
             (fun (acc, prev) actual ->
               ((if actual <> prev then acc + 1 else acc), actual))
             (0, false) actuals)
      in
      mispredicts = transitions)

let () =
  Alcotest.run "tlb"
    [
      ( "tlb",
        [
          Alcotest.test_case "validation" `Quick test_tlb_create_validation;
          Alcotest.test_case "miss then hit" `Quick test_tlb_miss_then_hit;
          Alcotest.test_case "wp bit false" `Quick test_tlb_wp_bit_false;
          Alcotest.test_case "page base" `Quick test_tlb_page_base;
          Alcotest.test_case "round-robin eviction" `Quick test_tlb_round_robin_eviction;
          Alcotest.test_case "flush" `Quick test_tlb_flush;
          Alcotest.test_case "callback argument" `Quick test_tlb_wp_callback_gets_page_base;
        ] );
      ( "way_hint",
        [
          Alcotest.test_case "initial state" `Quick test_hint_initial;
          Alcotest.test_case "verdicts" `Quick test_hint_verdicts;
          Alcotest.test_case "reset" `Quick test_hint_reset;
          QCheck_alcotest.to_alcotest prop_hint_transitions;
        ] );
    ]
