test/test_cache.ml: Alcotest Array List Option QCheck QCheck_alcotest Wayplace
