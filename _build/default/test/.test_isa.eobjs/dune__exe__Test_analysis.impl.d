test/test_analysis.ml: Alcotest Array List String Wayplace
