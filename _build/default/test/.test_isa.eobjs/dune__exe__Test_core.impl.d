test/test_core.ml: Alcotest Array Lazy List String Wayplace
