test/test_serial.ml: Alcotest Array Filename Fun Printf Result Sys Wayplace
