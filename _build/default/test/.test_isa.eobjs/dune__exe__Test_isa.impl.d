test/test_isa.ml: Alcotest List QCheck QCheck_alcotest Wayplace
