test/test_integration.ml: Alcotest Hashtbl List QCheck QCheck_alcotest Wayplace
