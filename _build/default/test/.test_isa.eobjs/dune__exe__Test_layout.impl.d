test/test_layout.ml: Alcotest Array List QCheck QCheck_alcotest String Wayplace
