test/test_encode.ml: Alcotest Array Bytes Format Option Printf QCheck QCheck_alcotest Result Wayplace
