test/test_workloads.ml: Alcotest Array List QCheck QCheck_alcotest Wayplace
