test/test_sim.ml: Alcotest Array Lazy List Result Wayplace
