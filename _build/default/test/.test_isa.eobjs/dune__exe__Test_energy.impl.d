test/test_energy.ml: Alcotest QCheck QCheck_alcotest Wayplace
