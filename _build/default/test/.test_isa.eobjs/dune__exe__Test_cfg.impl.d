test/test_cfg.ml: Alcotest Array QCheck QCheck_alcotest Wayplace
