test/test_pipeline.ml: Alcotest List QCheck QCheck_alcotest Wayplace
