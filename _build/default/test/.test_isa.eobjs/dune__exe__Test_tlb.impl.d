test/test_tlb.ml: Alcotest List QCheck QCheck_alcotest Wayplace
