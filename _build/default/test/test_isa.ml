(* Unit and property tests for the XR32 ISA layer. *)

module Addr = Wayplace.Isa.Addr
module Opcode = Wayplace.Isa.Opcode
module Instr = Wayplace.Isa.Instr

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Addr --- *)

let test_instruction_bytes () = check "4-byte instructions" 4 Addr.instruction_bytes

let test_is_power_of_two () =
  List.iter
    (fun n -> check_bool (string_of_int n) true (Addr.is_power_of_two n))
    [ 1; 2; 4; 1024; 1 lsl 30 ];
  List.iter
    (fun n -> check_bool (string_of_int n) false (Addr.is_power_of_two n))
    [ 0; -1; -4; 3; 6; 1000 ]

let test_log2 () =
  check "log2 1" 0 (Addr.log2 1);
  check "log2 2" 1 (Addr.log2 2);
  check "log2 32" 5 (Addr.log2 32);
  check "log2 4096" 12 (Addr.log2 4096);
  Alcotest.check_raises "log2 of non-power" (Invalid_argument "Addr.log2: 3 is not a power of two")
    (fun () -> ignore (Addr.log2 3))

let test_alignment () =
  check "align_down" 0x20 (Addr.align_down 0x27 ~alignment:32);
  check "align_up" 0x40 (Addr.align_up 0x27 ~alignment:32);
  check "align_up exact" 0x40 (Addr.align_up 0x40 ~alignment:32);
  check "offset_in" 7 (Addr.offset_in 0x27 ~alignment:32);
  check_bool "is_aligned yes" true (Addr.is_aligned 0x40 ~alignment:32);
  check_bool "is_aligned no" false (Addr.is_aligned 0x42 ~alignment:32);
  Alcotest.check_raises "bad alignment" (Invalid_argument "Addr: alignment 3 is not a power of two")
    (fun () -> ignore (Addr.align_down 5 ~alignment:3))

let test_next_instruction () =
  check "next" 0x104 (Addr.next_instruction 0x100)

let test_pp () =
  Alcotest.(check string) "hex" "0x00000040" (Addr.to_string 0x40)

let prop_align_idempotent =
  QCheck.Test.make ~name:"align_down is idempotent and aligned" ~count:500
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 10))
    (fun (a, k) ->
      let alignment = 1 lsl k in
      let d = Addr.align_down a ~alignment in
      d <= a
      && Addr.is_aligned d ~alignment
      && Addr.align_down d ~alignment = d
      && a - d < alignment)

let prop_align_up_ge =
  QCheck.Test.make ~name:"align_up bounds" ~count:500
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 10))
    (fun (a, k) ->
      let alignment = 1 lsl k in
      let u = Addr.align_up a ~alignment in
      u >= a && Addr.is_aligned u ~alignment && u - a < alignment)

let prop_log2_roundtrip =
  QCheck.Test.make ~name:"log2 inverts shifts" ~count:100
    QCheck.(int_bound 40)
    (fun k -> Addr.log2 (1 lsl k) = k)

(* --- Opcode --- *)

let test_is_control () =
  List.iter
    (fun (op, expected) ->
      check_bool (Opcode.mnemonic op) expected (Opcode.is_control op))
    [
      (Opcode.Branch, true);
      (Opcode.Jump, true);
      (Opcode.Call, true);
      (Opcode.Return, true);
      (Opcode.Alu Opcode.Add, false);
      (Opcode.Mac, false);
      (Opcode.Load, false);
      (Opcode.Store, false);
      (Opcode.Nop, false);
    ]

let test_is_memory () =
  check_bool "load" true (Opcode.is_memory Opcode.Load);
  check_bool "store" true (Opcode.is_memory Opcode.Store);
  check_bool "alu" false (Opcode.is_memory (Opcode.Alu Opcode.Sub));
  check_bool "branch" false (Opcode.is_memory Opcode.Branch)

let test_latency () =
  check "alu" 1 (Opcode.execute_latency (Opcode.Alu Opcode.Move));
  check "mac" 3 (Opcode.execute_latency Opcode.Mac);
  check "load" 1 (Opcode.execute_latency Opcode.Load);
  check "branch" 1 (Opcode.execute_latency Opcode.Branch)

let test_mnemonics_unique () =
  let ms = List.map Opcode.mnemonic Opcode.all in
  check "all distinct" (List.length ms) (List.length (List.sort_uniq compare ms))

let test_all_covers_classes () =
  check_bool "has control" true (List.exists Opcode.is_control Opcode.all);
  check_bool "has memory" true (List.exists Opcode.is_memory Opcode.all)

(* --- Instr --- *)

let test_instr_constructors () =
  Alcotest.(check bool) "alu no data" true
    ((Instr.alu Opcode.Add).Instr.locality = Instr.No_data);
  Alcotest.(check bool) "load keeps locality" true
    ((Instr.load (Instr.Strided 8)).Instr.locality = Instr.Strided 8);
  Alcotest.(check bool) "default memory locality" true
    ((Instr.make Opcode.Load).Instr.locality = Instr.Sequential)

let test_instr_validation () =
  Alcotest.check_raises "locality on alu"
    (Invalid_argument "Instr.make: data locality on a non-memory opcode")
    (fun () -> ignore (Instr.make ~locality:Instr.Sequential (Opcode.Alu Opcode.Add)));
  Alcotest.check_raises "no_data on load"
    (Invalid_argument "Instr.make: memory opcode needs a data locality")
    (fun () -> ignore (Instr.make ~locality:Instr.No_data Opcode.Load))

let test_instr_equal () =
  check_bool "equal" true (Instr.equal (Instr.load Instr.Sequential) (Instr.load Instr.Sequential));
  check_bool "differ by locality" false
    (Instr.equal (Instr.load Instr.Sequential) (Instr.load (Instr.Strided 4)));
  check_bool "differ by opcode" false (Instr.equal Instr.branch Instr.jump)

let test_instr_size () = check "size" 4 Instr.size_bytes

let () =
  Alcotest.run "isa"
    [
      ( "addr",
        [
          Alcotest.test_case "instruction bytes" `Quick test_instruction_bytes;
          Alcotest.test_case "powers of two" `Quick test_is_power_of_two;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "next instruction" `Quick test_next_instruction;
          Alcotest.test_case "pretty printing" `Quick test_pp;
          QCheck_alcotest.to_alcotest prop_align_idempotent;
          QCheck_alcotest.to_alcotest prop_align_up_ge;
          QCheck_alcotest.to_alcotest prop_log2_roundtrip;
        ] );
      ( "opcode",
        [
          Alcotest.test_case "control classification" `Quick test_is_control;
          Alcotest.test_case "memory classification" `Quick test_is_memory;
          Alcotest.test_case "latencies" `Quick test_latency;
          Alcotest.test_case "mnemonics unique" `Quick test_mnemonics_unique;
          Alcotest.test_case "class coverage" `Quick test_all_covers_classes;
        ] );
      ( "instr",
        [
          Alcotest.test_case "constructors" `Quick test_instr_constructors;
          Alcotest.test_case "validation" `Quick test_instr_validation;
          Alcotest.test_case "equality" `Quick test_instr_equal;
          Alcotest.test_case "size" `Quick test_instr_size;
        ] );
    ]
