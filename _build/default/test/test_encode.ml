(* Tests for instruction encoding and whole-image emission. *)

module Isa = Wayplace.Isa
module Encode = Wayplace.Isa.Encode
module Instr = Wayplace.Isa.Instr
module Opcode = Wayplace.Isa.Opcode
module Image = Wayplace.Layout.Binary_image
module Layout = Wayplace.Layout.Binary_layout
module Placer = Wayplace.Layout.Placer
module Icfg = Wayplace.Cfg.Icfg

let roundtrip ?target instr ~pc =
  let word = Encode.instruction_word instr ~pc ~target in
  match Encode.decode word ~pc with
  | Ok (decoded, back_target) ->
      Alcotest.(check bool) "instruction survives" true (Instr.equal instr decoded);
      Alcotest.(check (option int)) "target survives" target back_target
  | Error msg -> Alcotest.fail msg

let test_roundtrip_plain () =
  roundtrip (Instr.alu Opcode.Add) ~pc:0x1000;
  roundtrip (Instr.alu Opcode.Compare) ~pc:0x1000;
  roundtrip Instr.mac ~pc:0;
  roundtrip Instr.nop ~pc:0xFFFC

let test_roundtrip_memory () =
  roundtrip (Instr.load Instr.Sequential) ~pc:0x1000;
  roundtrip (Instr.store (Instr.Strided 64)) ~pc:0x1000;
  roundtrip (Instr.load (Instr.Random_within 4096)) ~pc:0x1000

let test_roundtrip_transfers () =
  roundtrip Instr.branch ~pc:0x1000 ~target:0x1100;
  roundtrip Instr.jump ~pc:0x1000 ~target:0x0F00 (* backwards *);
  roundtrip Instr.call ~pc:0x1000 ~target:0x9000;
  roundtrip Instr.return ~pc:0x1000

let test_encode_errors () =
  let fails f = match f () with (_ : int32) -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "branch without target" true
    (fails (fun () -> Encode.instruction_word Instr.branch ~pc:0 ~target:None));
  Alcotest.(check bool) "target on alu" true
    (fails (fun () ->
         Encode.instruction_word (Instr.alu Opcode.Add) ~pc:0 ~target:(Some 4)));
  Alcotest.(check bool) "displacement overflow" true
    (fails (fun () ->
         Encode.instruction_word Instr.jump ~pc:0 ~target:(Some (1 lsl 27))))

let test_decode_garbage () =
  Alcotest.(check bool) "invalid opcode" true
    (Result.is_error (Encode.decode 0xFC00_0000l ~pc:0))

let prop_roundtrip_displacements =
  QCheck.Test.make ~name:"branch displacement roundtrips" ~count:300
    QCheck.(int_range (-100000) 100000)
    (fun words ->
      let pc = 0x0100_0000 in
      let target = pc + (words * 4) in
      let word = Encode.instruction_word Instr.branch ~pc ~target:(Some target) in
      match Encode.decode word ~pc with
      | Ok (_, Some back) -> back = target
      | Ok (_, None) | Error _ -> false)

(* Whole-image emission on a generated benchmark: every instruction
   address decodes back to the instruction the graph holds, and every
   terminator's encoded target matches the layout. *)
let test_image_roundtrip () =
  let program = Wayplace.Workloads.Codegen.generate Wayplace.Workloads.Mibench.tiny in
  let graph = program.Wayplace.Workloads.Codegen.graph in
  let profile =
    Wayplace.Workloads.Tracer.profile program Wayplace.Workloads.Tracer.Small
  in
  let layout =
    Layout.of_order graph ~base:0x10000 (Placer.place graph profile)
  in
  let image = Image.emit graph layout in
  Alcotest.(check int) "image size" (Layout.code_size_bytes layout)
    (Bytes.length image);
  Array.iter
    (fun id ->
      let block = Icfg.block graph id in
      Array.iteri
        (fun i instr ->
          let addr = Layout.instr_addr layout id i in
          match Image.decode_at graph layout image addr with
          | Error msg -> Alcotest.fail msg
          | Ok (decoded, target) ->
              if not (Instr.equal instr decoded) then
                Alcotest.failf "B%d[%d] decodes to %s" id i
                  (Format.asprintf "%a" Instr.pp decoded);
              let is_last = i = Array.length block.Wayplace.Cfg.Basic_block.instrs - 1 in
              let expected_target =
                if not is_last then None
                else begin
                  match Wayplace.Cfg.Basic_block.terminator block with
                  | Opcode.Branch | Opcode.Jump ->
                      Option.map (Layout.block_start layout) (Icfg.taken_succ graph id)
                  | Opcode.Call ->
                      Option.map (Layout.block_start layout) (Icfg.call_target graph id)
                  | Opcode.Return | Opcode.Alu _ | Mac | Load | Store | Nop ->
                      None
                end
              in
              Alcotest.(check (option int))
                (Printf.sprintf "B%d[%d] target" id i)
                expected_target target)
        block.Wayplace.Cfg.Basic_block.instrs)
    (Layout.order layout)

let test_image_bounds () =
  let program = Wayplace.Workloads.Codegen.generate Wayplace.Workloads.Mibench.tiny in
  let graph = program.Wayplace.Workloads.Codegen.graph in
  let layout = Layout.of_order graph ~base:0x10000 (Placer.original graph) in
  let image = Image.emit graph layout in
  Alcotest.(check bool) "below base" true
    (Result.is_error (Image.decode_at graph layout image 0x0FFF0));
  Alcotest.(check bool) "past end" true
    (Result.is_error
       (Image.decode_at graph layout image (0x10000 + Bytes.length image)));
  Alcotest.(check bool) "misaligned" true
    (Result.is_error (Image.decode_at graph layout image 0x10002))

let () =
  Alcotest.run "encode"
    [
      ( "words",
        [
          Alcotest.test_case "plain roundtrip" `Quick test_roundtrip_plain;
          Alcotest.test_case "memory roundtrip" `Quick test_roundtrip_memory;
          Alcotest.test_case "transfer roundtrip" `Quick test_roundtrip_transfers;
          Alcotest.test_case "encode errors" `Quick test_encode_errors;
          Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
          QCheck_alcotest.to_alcotest prop_roundtrip_displacements;
        ] );
      ( "image",
        [
          Alcotest.test_case "whole-program roundtrip" `Quick test_image_roundtrip;
          Alcotest.test_case "bounds" `Quick test_image_bounds;
        ] );
    ]
