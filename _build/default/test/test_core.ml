(* Tests for the public Wayplace facade and the Area policy. *)

module W = Wayplace
module Area = Wayplace.Area
module Mibench = Wayplace.Workloads.Mibench
module Tracer = Wayplace.Workloads.Tracer
module Codegen = Wayplace.Workloads.Codegen
module Placer = Wayplace.Layout.Placer
module Binary_layout = Wayplace.Layout.Binary_layout

let prepared =
  lazy
    (let program = Codegen.generate Mibench.tiny in
     let profile = Tracer.profile program Tracer.Small in
     let compiled = W.compile program.Codegen.graph profile in
     (program, profile, compiled))

(* --- compile --- *)

let test_compile_admissible () =
  let program, _, compiled = Lazy.force prepared in
  Alcotest.(check bool) "admissible" true
    (Placer.is_admissible program.Codegen.graph
       (Binary_layout.order compiled.W.layout)
    = Ok ())

let test_compile_base_default () =
  let _, _, compiled = Lazy.force prepared in
  Alcotest.(check int) "default base" W.Sim.Simulator.code_base
    (Binary_layout.base compiled.W.layout)

let test_compile_custom_base () =
  let program, profile, _ = Lazy.force prepared in
  let compiled = W.compile ~base:0x4000 program.Codegen.graph profile in
  Alcotest.(check int) "custom base" 0x4000 (Binary_layout.base compiled.W.layout)

let test_compile_chains_cover () =
  let program, _, compiled = Lazy.force prepared in
  let total =
    List.fold_left
      (fun acc c -> acc + W.Layout.Chain.length c)
      0 compiled.W.chains
  in
  Alcotest.(check int) "chains cover all blocks"
    (W.Cfg.Icfg.num_blocks program.Codegen.graph)
    total

let test_compile_hottest_first () =
  let _, _, compiled = Lazy.force prepared in
  let weights =
    List.sort W.Layout.Chain.compare_by_weight compiled.W.chains
    |> List.map (fun (c : W.Layout.Chain.t) -> c.W.Layout.Chain.weight)
  in
  (* The layout's first block belongs to the heaviest chain. *)
  match (List.sort W.Layout.Chain.compare_by_weight compiled.W.chains, weights) with
  | heaviest :: _, _ ->
      Alcotest.(check int) "first block of heaviest chain leads"
        (W.Layout.Chain.first heaviest)
        (Binary_layout.order compiled.W.layout).(0)
  | [], _ -> Alcotest.fail "no chains"

let test_original_layout () =
  let program, _, _ = Lazy.force prepared in
  let layout = W.original_layout program.Codegen.graph in
  Alcotest.(check (list int)) "identity order"
    (Array.to_list (W.Cfg.Icfg.original_order program.Codegen.graph))
    (Array.to_list (Binary_layout.order layout))

let test_evaluate_runs () =
  let program, _, compiled = Lazy.force prepared in
  let config =
    W.paper_machine (W.Sim.Config.Way_placement { area_bytes = 1024 })
  in
  let stats = W.evaluate ~config ~program ~compiled in
  Alcotest.(check bool) "fetched something" true (stats.W.Sim.Stats.fetches > 0);
  Alcotest.(check bool) "energy positive" true
    (W.Sim.Stats.total_energy_pj stats > 0.0)

(* --- Area --- *)

let page = 1024

let test_area_validation () =
  Alcotest.(check bool) "non multiple" true
    (match Area.of_bytes ~page_bytes:page 1500 with
    | (_ : Area.t) -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "non positive" true
    (match Area.of_bytes ~page_bytes:page 0 with
    | (_ : Area.t) -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check int) "kilobytes" 2048 (Area.bytes (Area.of_kilobytes ~page_bytes:page 2));
  Alcotest.(check int) "pages" 2 (Area.pages (Area.of_kilobytes ~page_bytes:page 2) ~page_bytes:page)

let test_area_covers () =
  let area = Area.of_kilobytes ~page_bytes:page 2 in
  Alcotest.(check bool) "inside" true (Area.covers area ~code_base:0x1000 0x17FF);
  Alcotest.(check bool) "boundary excluded" false
    (Area.covers area ~code_base:0x1000 0x1800);
  Alcotest.(check bool) "before base" false (Area.covers area ~code_base:0x1000 0xFFF)

let coverage_for area_kb =
  let program, profile, compiled = Lazy.force prepared in
  Area.coverage
    (Area.of_kilobytes ~page_bytes:page area_kb)
    ~graph:program.Codegen.graph ~profile ~layout:compiled.W.layout

let test_area_coverage_monotone () =
  let c1 = coverage_for 1 and c2 = coverage_for 2 and c4 = coverage_for 4 in
  Alcotest.(check bool) "monotone" true (c1 <= c2 +. 1e-9 && c2 <= c4 +. 1e-9);
  Alcotest.(check bool) "bounded" true (c1 >= 0.0 && c4 <= 1.0)

let test_area_full_coverage () =
  let program, _, compiled = Lazy.force prepared in
  let code = Binary_layout.code_size_bytes compiled.W.layout in
  let kb = (code / 1024) + 1 in
  Alcotest.(check (float 1e-9)) "area beyond the binary covers all" 1.0
    (coverage_for kb);
  ignore program

let test_area_choose () =
  let program, profile, compiled = Lazy.force prepared in
  let graph = program.Codegen.graph in
  let layout = compiled.W.layout in
  let chosen =
    Area.choose ~page_bytes:page ~max_bytes:(32 * 1024) ~target_coverage:0.9
      ~graph ~profile ~layout
  in
  Alcotest.(check bool) "reaches the target" true
    (Area.coverage chosen ~graph ~profile ~layout >= 0.9);
  (* Minimality: one page less must fall short (unless it is one page). *)
  if Area.bytes chosen > page then begin
    let smaller = Area.of_bytes ~page_bytes:page (Area.bytes chosen - page) in
    Alcotest.(check bool) "minimal" true
      (Area.coverage smaller ~graph ~profile ~layout < 0.9)
  end

let test_area_choose_unreachable () =
  let program, profile, compiled = Lazy.force prepared in
  let graph = program.Codegen.graph in
  (* Target 1.0 with a cap smaller than the binary: returns the cap. *)
  let chosen =
    Area.choose ~page_bytes:page ~max_bytes:page ~target_coverage:1.0 ~graph
      ~profile ~layout:compiled.W.layout
  in
  Alcotest.(check int) "cap returned" page (Area.bytes chosen)

let test_area_choose_validation () =
  let program, profile, compiled = Lazy.force prepared in
  let graph = program.Codegen.graph in
  let layout = compiled.W.layout in
  Alcotest.(check bool) "bad target" true
    (match
       Area.choose ~page_bytes:page ~max_bytes:page ~target_coverage:2.0 ~graph
         ~profile ~layout
     with
    | (_ : Area.t) -> false
    | exception Invalid_argument _ -> true)

let test_version () =
  Alcotest.(check bool) "non-empty version" true (String.length W.version > 0)

let () =
  Alcotest.run "core"
    [
      ( "compile",
        [
          Alcotest.test_case "admissible" `Quick test_compile_admissible;
          Alcotest.test_case "default base" `Quick test_compile_base_default;
          Alcotest.test_case "custom base" `Quick test_compile_custom_base;
          Alcotest.test_case "chains cover" `Quick test_compile_chains_cover;
          Alcotest.test_case "hottest chain first" `Quick test_compile_hottest_first;
          Alcotest.test_case "original layout" `Quick test_original_layout;
          Alcotest.test_case "evaluate" `Quick test_evaluate_runs;
        ] );
      ( "area",
        [
          Alcotest.test_case "validation" `Quick test_area_validation;
          Alcotest.test_case "covers" `Quick test_area_covers;
          Alcotest.test_case "coverage monotone" `Quick test_area_coverage_monotone;
          Alcotest.test_case "full coverage" `Quick test_area_full_coverage;
          Alcotest.test_case "choose minimal" `Quick test_area_choose;
          Alcotest.test_case "choose cap" `Quick test_area_choose_unreachable;
          Alcotest.test_case "choose validation" `Quick test_area_choose_validation;
          Alcotest.test_case "version" `Quick test_version;
        ] );
    ]
