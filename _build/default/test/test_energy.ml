(* Tests for the energy model: per-event CAM energies, the account
   buckets and ED products. *)

module Params = Wayplace.Energy.Params
module Cam_energy = Wayplace.Energy.Cam_energy
module Account = Wayplace.Energy.Account
module Ed = Wayplace.Energy.Ed
module Geometry = Wayplace.Cache.Geometry

let xscale = Geometry.make ~size_bytes:(32 * 1024) ~assoc:32 ~line_bytes:32
let e32 = Cam_energy.of_geometry Params.default xscale
let feq = Alcotest.(check (float 1e-9))

let test_tag_search_linear () =
  feq "zero ways" 0.0 (Cam_energy.tag_search e32 ~ways:0);
  feq "one way" e32.Cam_energy.tag_search_one_pj (Cam_energy.tag_search e32 ~ways:1);
  feq "all ways" e32.Cam_energy.tag_search_full_pj (Cam_energy.tag_search e32 ~ways:32);
  feq "linearity"
    (2.0 *. Cam_energy.tag_search e32 ~ways:1)
    (Cam_energy.tag_search e32 ~ways:2);
  Alcotest.(check bool) "negative rejected" true
    (match Cam_energy.tag_search e32 ~ways:(-1) with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true)

let test_full_search_dominates () =
  Alcotest.(check bool) "full is 32x one way" true
    (abs_float
       (e32.Cam_energy.tag_search_full_pj
       -. (32.0 *. e32.Cam_energy.tag_search_one_pj))
    < 1e-9)

let test_energy_scales_with_assoc () =
  let e8 =
    Cam_energy.of_geometry Params.default
      (Geometry.make ~size_bytes:(32 * 1024) ~assoc:8 ~line_bytes:32)
  in
  Alcotest.(check bool) "32-way search costs more than 8-way" true
    (e32.Cam_energy.tag_search_full_pj > e8.Cam_energy.tag_search_full_pj);
  (* 8-way has more sets (128 vs 32) hence longer bit lines. *)
  Alcotest.(check bool) "more sets -> costlier word" true
    (e8.Cam_energy.data_word_pj > e32.Cam_energy.data_word_pj)

let test_memo_factor () =
  feq "21% for 32B/32-way" (1.0 +. (54.0 /. 256.0)) e32.Cam_energy.memo_data_factor;
  let e8 =
    Cam_energy.of_geometry Params.default
      (Geometry.make ~size_bytes:(32 * 1024) ~assoc:8 ~line_bytes:32)
  in
  (* 8-way links are 4 bits: 9 x 4 / 256 = 14%. *)
  feq "14% for 32B/8-way" (1.0 +. (36.0 /. 256.0)) e8.Cam_energy.memo_data_factor

let test_tlb_energy () =
  let small = Cam_energy.tlb_lookup_pj Params.default ~entries:8 ~page_bytes:1024 in
  let big = Cam_energy.tlb_lookup_pj Params.default ~entries:32 ~page_bytes:1024 in
  Alcotest.(check bool) "positive" true (small > 0.0);
  Alcotest.(check bool) "more entries cost more" true (big > small)

let test_way_placed_access_is_cheap () =
  (* The core claim: a way-placed access (1 way + word) costs a small
     fraction of a normal access (32 ways + word). *)
  let normal = e32.Cam_energy.tag_search_full_pj +. e32.Cam_energy.data_word_pj in
  let placed = e32.Cam_energy.tag_search_one_pj +. e32.Cam_energy.data_word_pj in
  Alcotest.(check bool) "at least 3x cheaper" true (placed *. 3.0 < normal)

(* --- Account --- *)

let test_account_buckets () =
  let a = Account.create () in
  Account.add_icache a 10.0;
  Account.add_icache a 5.0;
  Account.add_itlb a 1.0;
  Account.add_dcache a 2.0;
  Account.add_memory a 3.0;
  Account.add_core a 4.0;
  feq "icache" 15.0 (Account.icache_pj a);
  feq "itlb" 1.0 (Account.itlb_pj a);
  feq "dcache" 2.0 (Account.dcache_pj a);
  feq "memory" 3.0 (Account.memory_pj a);
  feq "core" 4.0 (Account.core_pj a);
  feq "total" 25.0 (Account.total_pj a);
  feq "share" 0.6 (Account.icache_share a)

let test_account_empty_share () =
  feq "empty share" 0.0 (Account.icache_share (Account.create ()))

(* --- Ed --- *)

let test_ed_product () =
  feq "raw" 200.0 (Ed.ed_product ~energy_pj:100.0 ~cycles:2)

let test_normalised () =
  feq "half" 0.5 (Ed.normalised ~scheme:50.0 ~baseline:100.0);
  Alcotest.(check bool) "zero baseline rejected" true
    (match Ed.normalised ~scheme:1.0 ~baseline:0.0 with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true)

let test_normalised_ed () =
  feq "combined" 0.25
    (Ed.normalised_ed ~scheme_energy_pj:50.0 ~scheme_cycles:100
       ~baseline_energy_pj:100.0 ~baseline_cycles:200)

let test_percent () = feq "percent" 52.0 (Ed.percent 0.52)

let prop_normalised_identity =
  QCheck.Test.make ~name:"x/x = 1" ~count:100
    QCheck.(float_range 0.001 1e9)
    (fun x -> abs_float (Ed.normalised ~scheme:x ~baseline:x -. 1.0) < 1e-9)

let prop_ed_monotone =
  QCheck.Test.make ~name:"ED monotone in both factors" ~count:100
    QCheck.(pair (float_range 1.0 1e6) (int_range 1 1_000_000))
    (fun (e, c) ->
      Ed.ed_product ~energy_pj:e ~cycles:c
      <= Ed.ed_product ~energy_pj:(e +. 1.0) ~cycles:(c + 1))

let () =
  Alcotest.run "energy"
    [
      ( "cam_energy",
        [
          Alcotest.test_case "tag search linearity" `Quick test_tag_search_linear;
          Alcotest.test_case "full search scaling" `Quick test_full_search_dominates;
          Alcotest.test_case "associativity scaling" `Quick test_energy_scales_with_assoc;
          Alcotest.test_case "way-memo factor" `Quick test_memo_factor;
          Alcotest.test_case "tlb energy" `Quick test_tlb_energy;
          Alcotest.test_case "way-placed cheapness" `Quick test_way_placed_access_is_cheap;
        ] );
      ( "account",
        [
          Alcotest.test_case "buckets" `Quick test_account_buckets;
          Alcotest.test_case "empty share" `Quick test_account_empty_share;
        ] );
      ( "ed",
        [
          Alcotest.test_case "product" `Quick test_ed_product;
          Alcotest.test_case "normalised" `Quick test_normalised;
          Alcotest.test_case "normalised ED" `Quick test_normalised_ed;
          Alcotest.test_case "percent" `Quick test_percent;
          QCheck_alcotest.to_alcotest prop_normalised_identity;
          QCheck_alcotest.to_alcotest prop_ed_monotone;
        ] );
    ]
