(* End-to-end invariants: the paper's qualitative claims must hold on
   real simulation runs.  These are the properties EXPERIMENTS.md
   quantifies; here we assert their direction on a few benchmarks. *)

module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Runner = Wayplace.Sim.Runner
module Geometry = Wayplace.Cache.Geometry
module Mibench = Wayplace.Workloads.Mibench

let wp area_kb = Config.Way_placement { area_bytes = area_kb * 1024 }

let prep_of = Hashtbl.create 8

let prepare name =
  match Hashtbl.find_opt prep_of name with
  | Some p -> p
  | None ->
      let p = Runner.prepare (Mibench.find name) in
      Hashtbl.add prep_of name p;
      p

let benchmarks = [ "crc"; "susan_c"; "tiff2bw" ]

let test_wp_saves_icache_energy () =
  List.iter
    (fun name ->
      let c = Runner.compare_to_baseline (prepare name) (Config.xscale (wp 16)) in
      Alcotest.(check bool)
        (name ^ ": way-placement saves i-cache energy")
        true
        (c.Runner.norm_icache_energy < 0.8))
    benchmarks

let test_wm_saves_but_less () =
  List.iter
    (fun name ->
      let prep = prepare name in
      let wp_cmp = Runner.compare_to_baseline prep (Config.xscale (wp 16)) in
      let wm_cmp =
        Runner.compare_to_baseline prep (Config.xscale Config.Way_memoization)
      in
      Alcotest.(check bool)
        (name ^ ": way-memoization saves at 32KB/32-way")
        true
        (wm_cmp.Runner.norm_icache_energy < 1.0);
      Alcotest.(check bool)
        (name ^ ": way-placement beats way-memoization")
        true
        (wp_cmp.Runner.norm_icache_energy < wm_cmp.Runner.norm_icache_energy))
    benchmarks

let test_ed_below_one () =
  List.iter
    (fun name ->
      let c = Runner.compare_to_baseline (prepare name) (Config.xscale (wp 16)) in
      Alcotest.(check bool) (name ^ ": ED < 1") true (c.Runner.norm_ed < 1.0))
    benchmarks

let test_performance_unchanged () =
  (* Paper Section 6.1: "no change in performance" — way-placement's
     cycle count stays within 2% of the baseline at 32KB/32-way. *)
  List.iter
    (fun name ->
      let c = Runner.compare_to_baseline (prepare name) (Config.xscale (wp 16)) in
      Alcotest.(check bool)
        (name ^ ": cycles within 2%")
        true
        (abs_float (c.Runner.norm_cycles -. 1.0) < 0.02))
    benchmarks

let test_area_sweep_monotone_energy () =
  (* Figure 5(a): shrinking the area loses savings gradually. *)
  let prep = prepare "tiff2bw" in
  let energy kb =
    (Runner.compare_to_baseline prep (Config.xscale (wp kb))).Runner.norm_icache_energy
  in
  let e16 = energy 16 and e4 = energy 4 and e1 = energy 1 in
  Alcotest.(check bool) "16KB <= 4KB + slack" true (e16 <= e4 +. 0.02);
  Alcotest.(check bool) "4KB <= 1KB + slack" true (e4 <= e1 +. 0.02);
  Alcotest.(check bool) "1KB still saves" true (e1 < 1.0)

let test_smaller_assoc_saves_less () =
  (* Figure 6(a): the tag side shrinks with associativity, so the
     absolute opportunity shrinks too. *)
  let prep = prepare "susan_c" in
  let energy ways =
    let g = Geometry.make ~size_bytes:(32 * 1024) ~assoc:ways ~line_bytes:32 in
    (Runner.compare_to_baseline prep
       (Config.with_icache (Config.xscale (wp 16)) g))
      .Runner.norm_icache_energy
  in
  Alcotest.(check bool) "32-way saves more than 8-way" true (energy 32 < energy 8)

let test_waymemo_poor_at_low_assoc () =
  (* Figure 6(a)'s anomaly: at low associativity the 21% data-side
     overhead can exceed what link-following saves. *)
  let prep = prepare "tiff2bw" in
  let g = Geometry.make ~size_bytes:(32 * 1024) ~assoc:8 ~line_bytes:32 in
  let wm =
    Runner.compare_to_baseline prep
      (Config.with_icache (Config.xscale Config.Way_memoization) g)
  in
  let wp_cmp =
    Runner.compare_to_baseline prep (Config.with_icache (Config.xscale (wp 16)) g)
  in
  Alcotest.(check bool) "way-memoization near or above baseline" true
    (wm.Runner.norm_icache_energy > 0.9);
  Alcotest.(check bool) "way-placement still saves" true
    (wp_cmp.Runner.norm_icache_energy < wm.Runner.norm_icache_energy)

let test_hint_is_accurate () =
  (* Section 4.1: "using the way-hint bit ... is very accurate". *)
  let prep = prepare "susan_c" in
  let stats = Runner.run_scheme prep (Config.xscale (wp 16)) in
  Alcotest.(check bool) "hint accuracy > 95%" true (Stats.hint_accuracy stats > 0.95)

let test_tag_comparisons_ordering () =
  (* The headline mechanism: way-placement performs far fewer tag
     comparisons than the baseline; way-memoization fewer still (its
     link follows do none at all). *)
  let prep = prepare "crc" in
  let comparisons scheme =
    (Runner.run_scheme prep (Config.xscale scheme)).Stats.tag_comparisons
  in
  let base = comparisons Config.Baseline in
  let placed = comparisons (wp 16) in
  Alcotest.(check bool) "way-placement cuts comparisons 10x" true
    (placed * 10 < base)

let test_replacement_ablation_runs () =
  let prep = prepare "crc" in
  let config =
    Config.with_replacement (Config.xscale (wp 16)) Wayplace.Cache.Replacement.Lru
  in
  let stats = Runner.run_scheme prep config in
  Alcotest.(check bool) "lru config runs" true (stats.Stats.fetches > 0)

let test_icache_share_plausible () =
  (* Montanaro et al.: the i-cache is a major consumer; our baseline
     share must sit in a plausible band (10-35%). *)
  let prep = prepare "crc" in
  let stats = Runner.run_scheme prep (Config.xscale Config.Baseline) in
  let share = Wayplace.Energy.Account.icache_share stats.Stats.account in
  Alcotest.(check bool) "share in [0.08, 0.40]" true (share > 0.08 && share < 0.40)

(* Property: on randomly mutated miniature specs, every scheme
   simulates cleanly and the bookkeeping invariants hold. *)
let prop_random_specs =
  QCheck.Test.make ~name:"random specs: invariants across all schemes" ~count:12
    QCheck.(triple (int_range 2 9) (int_range 1 3) (int_range 0 2))
    (fun (funcs, seed_salt, loop_depth) ->
      let spec =
        {
          Wayplace.Workloads.Mibench.tiny with
          Wayplace.Workloads.Spec.name = "prop";
          seed = 1000 + (funcs * 31) + seed_salt;
          num_funcs = funcs;
          max_loop_depth = loop_depth;
          trace_blocks_large = 1500;
          trace_blocks_small = 1500;
        }
      in
      let prep = Runner.prepare spec in
      List.for_all
        (fun scheme ->
          let stats = Runner.run_scheme prep (Config.xscale scheme) in
          stats.Stats.fetches
          = stats.Stats.same_line_fetches + stats.Stats.wp_fetches
            + stats.Stats.full_fetches + stats.Stats.link_follows
          && stats.Stats.icache_hits + stats.Stats.icache_misses
             = stats.Stats.fetches - stats.Stats.same_line_fetches
          && stats.Stats.cycles >= stats.Stats.retired_instrs
          && Stats.total_energy_pj stats > 0.0)
        [
          Config.Baseline;
          wp 16;
          wp 1;
          Config.Way_memoization;
          Config.Way_prediction;
          Config.Filter_cache { l0_bytes = 512 };
        ])

let () =
  Alcotest.run "integration"
    [
      ( "paper-claims",
        [
          Alcotest.test_case "wp saves energy" `Slow test_wp_saves_icache_energy;
          Alcotest.test_case "wm saves but less" `Slow test_wm_saves_but_less;
          Alcotest.test_case "ED below one" `Slow test_ed_below_one;
          Alcotest.test_case "performance unchanged" `Slow test_performance_unchanged;
          Alcotest.test_case "area sweep monotone" `Slow test_area_sweep_monotone_energy;
          Alcotest.test_case "associativity trend" `Slow test_smaller_assoc_saves_less;
          Alcotest.test_case "way-memo anomaly" `Slow test_waymemo_poor_at_low_assoc;
          Alcotest.test_case "hint accuracy" `Slow test_hint_is_accurate;
          Alcotest.test_case "tag comparison ordering" `Slow test_tag_comparisons_ordering;
          Alcotest.test_case "replacement ablation" `Slow test_replacement_ablation_runs;
          Alcotest.test_case "icache share" `Slow test_icache_share_plausible;
          QCheck_alcotest.to_alcotest prop_random_specs;
        ] );
    ]
