(* Tests for the BTB and the XTREM-lite cycle model. *)

module Btb = Wayplace.Pipeline.Btb
module Core = Wayplace.Pipeline.Core_model
module Opcode = Wayplace.Isa.Opcode

let test_btb_validation () =
  Alcotest.(check bool) "non power of two" true
    (match Btb.create ~entries:3 with
    | (_ : Btb.t) -> false
    | exception Invalid_argument _ -> true)

let test_btb_cold_predicts_not_taken () =
  let b = Btb.create ~entries:16 in
  Alcotest.(check bool) "cold" false (Btb.predict_taken b 0x100)

let test_btb_learns_taken () =
  let b = Btb.create ~entries:16 in
  Btb.update b 0x100 ~taken:true;
  Alcotest.(check bool) "learned after one taken" true (Btb.predict_taken b 0x100)

let test_btb_hysteresis () =
  let b = Btb.create ~entries:16 in
  Btb.update b 0x100 ~taken:true;
  (* allocate at counter 2 *)
  Btb.update b 0x100 ~taken:true;
  (* counter 3 *)
  Btb.update b 0x100 ~taken:false;
  (* counter 2: still predicts taken *)
  Alcotest.(check bool) "one not-taken tolerated" true (Btb.predict_taken b 0x100);
  Btb.update b 0x100 ~taken:false;
  Alcotest.(check bool) "two flip the prediction" false (Btb.predict_taken b 0x100)

let test_btb_no_alloc_on_not_taken () =
  let b = Btb.create ~entries:16 in
  Btb.update b 0x100 ~taken:false;
  Alcotest.(check bool) "not allocated" false (Btb.predict_taken b 0x100)

let test_btb_tag_disambiguation () =
  let b = Btb.create ~entries:16 in
  Btb.update b 0x100 ~taken:true;
  (* 0x100 and 0x100 + 16*4 alias to the same slot but differ in tag. *)
  let alias = 0x100 + (16 * 4) in
  Alcotest.(check bool) "alias does not hit" false (Btb.predict_taken b alias)

let test_btb_reset () =
  let b = Btb.create ~entries:16 in
  Btb.update b 0x100 ~taken:true;
  Btb.reset b;
  Alcotest.(check bool) "cold again" false (Btb.predict_taken b 0x100)

(* --- Core_model --- *)

let retire_alu core =
  Core.retire core ~pc:0 ~opcode:(Opcode.Alu Opcode.Add) ~fetch_stall:0
    ~dmem_stall:0 ~taken:false

let test_core_base_cpi () =
  let core = Core.create () in
  for _ = 1 to 10 do
    retire_alu core
  done;
  Alcotest.(check int) "10 alus take 10 cycles" 10 (Core.cycles core);
  Alcotest.(check int) "instructions" 10 (Core.instructions core);
  Alcotest.(check (float 0.001)) "ipc 1.0" 1.0 (Core.ipc core)

let test_core_mac_occupancy () =
  let core = Core.create () in
  Core.retire core ~pc:0 ~opcode:Opcode.Mac ~fetch_stall:0 ~dmem_stall:0
    ~taken:false;
  Alcotest.(check int) "mac takes 3 cycles" 3 (Core.cycles core)

let test_core_stalls_accumulate () =
  let core = Core.create () in
  Core.retire core ~pc:0 ~opcode:Opcode.Load ~fetch_stall:50 ~dmem_stall:50
    ~taken:false;
  Alcotest.(check int) "1 + 50 + 50" 101 (Core.cycles core)

let test_core_negative_stall () =
  let core = Core.create () in
  Alcotest.check_raises "negative stall"
    (Invalid_argument "Core_model.retire: negative stall") (fun () ->
      Core.retire core ~pc:0 ~opcode:Opcode.Nop ~fetch_stall:(-1) ~dmem_stall:0
        ~taken:false)

let test_core_mispredict_penalty () =
  let core = Core.create ~mispredict_penalty:4 () in
  (* Cold BTB predicts not-taken; a taken branch mispredicts. *)
  Core.retire core ~pc:0x40 ~opcode:Opcode.Branch ~fetch_stall:0 ~dmem_stall:0
    ~taken:true;
  Alcotest.(check int) "mispredict charged" 5 (Core.cycles core);
  Alcotest.(check int) "counted" 1 (Core.mispredicts core);
  (* The BTB has now learned; the same branch taken again is correct. *)
  Core.retire core ~pc:0x40 ~opcode:Opcode.Branch ~fetch_stall:0 ~dmem_stall:0
    ~taken:true;
  Alcotest.(check int) "second time predicted" 6 (Core.cycles core);
  Alcotest.(check int) "still one mispredict" 1 (Core.mispredicts core)

let test_core_unconditional_free () =
  let core = Core.create () in
  List.iter
    (fun opcode ->
      Core.retire core ~pc:0 ~opcode ~fetch_stall:0 ~dmem_stall:0 ~taken:true)
    [ Opcode.Jump; Opcode.Call; Opcode.Return ];
  Alcotest.(check int) "no penalty for unconditional" 3 (Core.cycles core);
  Alcotest.(check int) "no mispredicts" 0 (Core.mispredicts core)

let test_core_reset () =
  let core = Core.create () in
  retire_alu core;
  Core.reset core;
  Alcotest.(check int) "cycles cleared" 0 (Core.cycles core);
  Alcotest.(check int) "instrs cleared" 0 (Core.instructions core)

let prop_core_cycles_lower_bound =
  QCheck.Test.make ~name:"cycles >= instructions" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (QCheck.int_bound 8))
    (fun stalls ->
      let core = Core.create () in
      List.iter
        (fun s ->
          Core.retire core ~pc:0 ~opcode:Opcode.Nop ~fetch_stall:s ~dmem_stall:0
            ~taken:false)
        stalls;
      Core.cycles core >= Core.instructions core
      && Core.cycles core
         = Core.instructions core + List.fold_left ( + ) 0 stalls)

let () =
  Alcotest.run "pipeline"
    [
      ( "btb",
        [
          Alcotest.test_case "validation" `Quick test_btb_validation;
          Alcotest.test_case "cold prediction" `Quick test_btb_cold_predicts_not_taken;
          Alcotest.test_case "learns taken" `Quick test_btb_learns_taken;
          Alcotest.test_case "2-bit hysteresis" `Quick test_btb_hysteresis;
          Alcotest.test_case "no alloc on not-taken" `Quick test_btb_no_alloc_on_not_taken;
          Alcotest.test_case "tag disambiguation" `Quick test_btb_tag_disambiguation;
          Alcotest.test_case "reset" `Quick test_btb_reset;
        ] );
      ( "core_model",
        [
          Alcotest.test_case "base CPI" `Quick test_core_base_cpi;
          Alcotest.test_case "mac occupancy" `Quick test_core_mac_occupancy;
          Alcotest.test_case "stalls" `Quick test_core_stalls_accumulate;
          Alcotest.test_case "negative stall" `Quick test_core_negative_stall;
          Alcotest.test_case "mispredict penalty" `Quick test_core_mispredict_penalty;
          Alcotest.test_case "unconditional transfers" `Quick test_core_unconditional_free;
          Alcotest.test_case "reset" `Quick test_core_reset;
          QCheck_alcotest.to_alcotest prop_core_cycles_lower_bound;
        ] );
    ]
