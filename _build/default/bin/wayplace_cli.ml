(* Command-line front end: run one benchmark under one configuration,
   inspect a benchmark's layout, dump profiles and block orders, or
   list the suite.

     dune exec bin/wayplace_cli.exe -- run -b crc -s wayplace -a 16
     dune exec bin/wayplace_cli.exe -- layout -b ispell
     dune exec bin/wayplace_cli.exe -- profile -b crc -o crc.profile
     dune exec bin/wayplace_cli.exe -- layout -b crc --profile crc.profile
     dune exec bin/wayplace_cli.exe -- list *)

open Cmdliner

let benchmark_arg =
  let doc = "Benchmark name (see the list subcommand)." in
  Arg.(value & opt string "crc" & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let scheme_arg =
  let doc = "Scheme: baseline, wayplace, waymemo, waypred or filter." in
  Arg.(value & opt string "wayplace" & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let area_arg =
  let doc = "Way-placement area size in KB." in
  Arg.(value & opt int 16 & info [ "a"; "area" ] ~docv:"KB" ~doc)

let size_arg =
  let doc = "Instruction cache size in KB." in
  Arg.(value & opt int 32 & info [ "size" ] ~docv:"KB" ~doc)

let ways_arg =
  let doc = "Instruction cache associativity." in
  Arg.(value & opt int 32 & info [ "ways" ] ~docv:"N" ~doc)

let line_arg =
  let doc = "Cache line size in bytes." in
  Arg.(value & opt int 32 & info [ "line" ] ~docv:"B" ~doc)

let find_spec name =
  match Wayplace.Workloads.Mibench.find name with
  | spec -> Ok spec
  | exception Not_found ->
      Error
        (Printf.sprintf "unknown benchmark %S; try the list subcommand" name)

let parse_scheme scheme area_kb =
  match scheme with
  | "baseline" -> Ok Wayplace.Sim.Config.Baseline
  | "wayplace" | "way-placement" ->
      Ok (Wayplace.Sim.Config.Way_placement { area_bytes = area_kb * 1024 })
  | "waymemo" | "way-memoization" -> Ok Wayplace.Sim.Config.Way_memoization
  | "waypred" | "way-prediction" -> Ok Wayplace.Sim.Config.Way_prediction
  | "filter" | "filter-cache" ->
      Ok (Wayplace.Sim.Config.Filter_cache { l0_bytes = 512 })
  | other -> Error (Printf.sprintf "unknown scheme %S" other)

let config_of ~scheme ~size_kb ~ways ~line =
  match
    Wayplace.Cache.Geometry.make ~size_bytes:(size_kb * 1024) ~assoc:ways
      ~line_bytes:line
  with
  | geometry ->
      Ok (Wayplace.Sim.Config.with_icache (Wayplace.Sim.Config.xscale scheme) geometry)
  | exception Invalid_argument msg -> Error msg

let run_cmd benchmark scheme area size ways line =
  let ( let* ) = Result.bind in
  let result =
    let* spec = find_spec benchmark in
    let* scheme = parse_scheme scheme area in
    let* config = config_of ~scheme ~size_kb:size ~ways ~line in
    let prep = Wayplace.Sim.Runner.prepare spec in
    let comparison = Wayplace.Sim.Runner.compare_to_baseline prep config in
    Format.printf "benchmark: %s@." spec.Wayplace.Workloads.Spec.name;
    Format.printf "%a@.@." Wayplace.Sim.Config.pp config;
    Format.printf "--- scheme run ---@.%a@.@." Wayplace.Sim.Stats.pp
      comparison.Wayplace.Sim.Runner.scheme;
    Format.printf "--- baseline run ---@.%a@.@." Wayplace.Sim.Stats.pp
      comparison.Wayplace.Sim.Runner.baseline;
    Format.printf
      "normalised i-cache energy: %.3f@.normalised ED product: %.3f@.normalised cycles: %.4f@."
      comparison.Wayplace.Sim.Runner.norm_icache_energy
      comparison.Wayplace.Sim.Runner.norm_ed
      comparison.Wayplace.Sim.Runner.norm_cycles;
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

let profile_arg =
  let doc = "Load the training profile from this file instead of rerunning." in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let output_arg =
  let doc = "Write the artifact to this file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let input_arg =
  let doc = "Training input: small or large." in
  Arg.(value & opt string "small" & info [ "input" ] ~docv:"INPUT" ~doc)

let parse_input = function
  | "small" -> Ok Wayplace.Workloads.Tracer.Small
  | "large" -> Ok Wayplace.Workloads.Tracer.Large
  | s -> Error (Printf.sprintf "unknown input %S (small|large)" s)

let profile_cmd benchmark input output =
  let ( let* ) = Result.bind in
  let result =
    let* spec = find_spec benchmark in
    let* input = parse_input input in
    let program = Wayplace.Workloads.Codegen.generate spec in
    let profile = Wayplace.Workloads.Tracer.profile program input in
    let serialised = Wayplace.Serial.profile_to_string profile in
    (match output with
    | Some path ->
        Wayplace.Serial.save ~path serialised;
        Format.printf "wrote %s (%d blocks profiled)@." path
          (Wayplace.Cfg.Profile.num_blocks profile)
    | None -> print_string serialised);
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

let load_profile path ~num_blocks =
  let ( let* ) = Result.bind in
  let* contents = Wayplace.Serial.load ~path in
  let* profile = Wayplace.Serial.profile_of_string contents in
  if Wayplace.Cfg.Profile.num_blocks profile <> num_blocks then
    Error
      (Printf.sprintf "profile has %d blocks, the program has %d"
         (Wayplace.Cfg.Profile.num_blocks profile)
         num_blocks)
  else Ok profile

let layout_report program profile order_output =
      let compiled = Wayplace.compile program.Wayplace.Workloads.Codegen.graph profile in
      let graph = program.Wayplace.Workloads.Codegen.graph in
      (match order_output with
      | Some path ->
          Wayplace.Serial.save ~path
            (Wayplace.Serial.order_to_string
               (Wayplace.Layout.Binary_layout.order compiled.Wayplace.layout));
          Format.printf "wrote block order to %s@." path
      | None -> ());
      Format.printf "%a@." Wayplace.Cfg.Icfg.pp_summary graph;
      Format.printf "%a@." Wayplace.Layout.Binary_layout.pp
        compiled.Wayplace.layout;
      Format.printf "chains: %d (longest %d blocks)@."
        (List.length compiled.Wayplace.chains)
        (List.fold_left
           (fun acc c -> max acc (Wayplace.Layout.Chain.length c))
           0 compiled.Wayplace.chains);
      let page_bytes = 1024 in
      List.iter
        (fun kb ->
          let area = Wayplace.Area.of_kilobytes ~page_bytes kb in
          Format.printf "  %a covers %.1f%% of profiled instructions@."
            Wayplace.Area.pp area
            (100.0
            *. Wayplace.Area.coverage area ~graph ~profile
                 ~layout:compiled.Wayplace.layout))
        [ 1; 2; 4; 8; 16 ];
      (* Loop structure of the three hottest functions. *)
      let hottest = Wayplace.Cfg.Profile.hottest_first profile in
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun id ->
          if Hashtbl.length seen < 3 then begin
            let f = (Wayplace.Cfg.Icfg.block graph id).Wayplace.Cfg.Basic_block.func in
            if not (Hashtbl.mem seen f) then begin
              Hashtbl.add seen f ();
              Format.printf "  hot %s@."
                (Wayplace.Cfg.Analysis.function_summary graph
                   (Wayplace.Cfg.Icfg.func graph f))
            end
          end)
        hottest;
      0

let layout_cmd benchmark profile_path order_output =
  match find_spec benchmark with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok spec -> begin
      let program = Wayplace.Workloads.Codegen.generate spec in
      let profile_result =
        match profile_path with
        | None ->
            Ok
              (Wayplace.Workloads.Tracer.profile program
                 Wayplace.Workloads.Tracer.Small)
        | Some path ->
            load_profile path
              ~num_blocks:
                (Wayplace.Cfg.Icfg.num_blocks
                   program.Wayplace.Workloads.Codegen.graph)
      in
      match profile_result with
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          1
      | Ok profile -> layout_report program profile order_output
    end

let limit_arg =
  let doc = "Maximum number of blocks to print." in
  Arg.(value & opt int 24 & info [ "limit" ] ~docv:"N" ~doc)

let disasm_cmd benchmark limit =
  match find_spec benchmark with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok spec ->
      let program = Wayplace.Workloads.Codegen.generate spec in
      let graph = program.Wayplace.Workloads.Codegen.graph in
      let profile =
        Wayplace.Workloads.Tracer.profile program Wayplace.Workloads.Tracer.Small
      in
      let compiled = Wayplace.compile graph profile in
      Wayplace.Layout.Listing.pp ~limit_blocks:limit Format.std_formatter
        ~graph ~layout:compiled.Wayplace.layout;
      0

let list_cmd () =
  List.iter print_endline Wayplace.Workloads.Mibench.names;
  0

let run_term =
  Term.(
    const run_cmd $ benchmark_arg $ scheme_arg $ area_arg $ size_arg $ ways_arg
    $ line_arg)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Simulate one benchmark under one configuration")
      run_term;
    Cmd.v
      (Cmd.info "layout" ~doc:"Show the way-placement layout of a benchmark")
      Term.(const layout_cmd $ benchmark_arg $ profile_arg $ output_arg);
    Cmd.v
      (Cmd.info "profile"
         ~doc:"Profile a benchmark and dump the result (stdout or -o FILE)")
      Term.(const profile_cmd $ benchmark_arg $ input_arg $ output_arg);
    Cmd.v
      (Cmd.info "disasm" ~doc:"Print the laid-out binary as a listing")
      Term.(const disasm_cmd $ benchmark_arg $ limit_arg);
    Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite")
      Term.(const list_cmd $ const ());
  ]

let () =
  let info =
    Cmd.info "wayplace_cli" ~version:Wayplace.version
      ~doc:"Compiler way-placement for instruction-cache energy (DATE 2008)"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
