(** Binary encoding of XR32 instructions — the byte-level existence of
    the laid-out program.

    A fixed 32-bit little-endian word per instruction:

    {v
    bits 31..26  opcode class
    bits 25..24  data-locality class (memory ops; 0 otherwise)
    bits 23..0   immediate: PC-relative word displacement for control
                 transfers (two's complement), locality parameter for
                 memory ops, 0 otherwise
    v}

    The encoder needs the instruction's address and its resolved
    target (from the {!Wp_layout} address assignment); the decoder
    recovers the instruction and the absolute target. *)

val instruction_word :
  Instr.t -> pc:Addr.t -> target:Addr.t option -> int32
(** @raise Invalid_argument when a control transfer has no target, a
    non-control instruction has one, or a displacement overflows the
    24-bit field. *)

val decode :
  int32 -> pc:Addr.t -> (Instr.t * Addr.t option, string) result
(** Inverse of {!instruction_word}. *)

val encode_block :
  Instr.t array -> pc:Addr.t -> targets:Addr.t option array -> bytes
(** Encode a straight-line run of instructions starting at [pc];
    [targets.(i)] resolves instruction [i]'s transfer, if any. *)
