(** XR32 instruction classes.

    The simulator is trace-driven at the basic-block level, so
    instructions carry only the information the pipeline and cache
    models need: their class (which determines execution latency and
    whether they touch the D-cache) and their control-flow role (which
    determines the fetch stream). *)

type alu_kind =
  | Add
  | Sub
  | Logic  (** and/or/xor/shift family *)
  | Move
  | Compare

type t =
  | Alu of alu_kind  (** single-cycle integer operation *)
  | Mac  (** multiply-accumulate; multi-cycle on the XScale-like core *)
  | Load  (** D-cache read *)
  | Store  (** D-cache write *)
  | Branch  (** conditional PC-relative branch *)
  | Jump  (** unconditional PC-relative branch *)
  | Call  (** branch-and-link to a function entry *)
  | Return  (** indirect branch back to the call site *)
  | Nop

val is_control : t -> bool
(** True for instructions that may redirect the fetch stream. *)

val is_memory : t -> bool
(** True for loads and stores. *)

val execute_latency : t -> int
(** Execution-stage occupancy in cycles (result latency is handled by
    the pipeline's scoreboard): ALU/Nop 1, MAC 3, Load/Store 1 (plus
    cache), control 1. *)

val mnemonic : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val all : t list
(** One representative of every class, for property tests. *)
