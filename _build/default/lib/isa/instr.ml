type data_locality =
  | No_data
  | Sequential
  | Strided of int
  | Random_within of int

type t = { opcode : Opcode.t; locality : data_locality }

let make ?locality opcode =
  let locality =
    match (locality, Opcode.is_memory opcode) with
    | Some l, true -> l
    | None, true -> Sequential
    | (Some No_data | None), false -> No_data
    | Some (Sequential | Strided _ | Random_within _), false ->
        invalid_arg "Instr.make: data locality on a non-memory opcode"
  in
  (match locality with
  | No_data ->
      if Opcode.is_memory opcode then
        invalid_arg "Instr.make: memory opcode needs a data locality"
  | Sequential | Strided _ | Random_within _ -> ());
  { opcode; locality }

let alu kind = make (Opcode.Alu kind)
let mac = make Opcode.Mac
let load locality = make ~locality Opcode.Load
let store locality = make ~locality Opcode.Store
let branch = make Opcode.Branch
let jump = make Opcode.Jump
let call = make Opcode.Call
let return = make Opcode.Return
let nop = make Opcode.Nop
let size_bytes = Addr.instruction_bytes

let pp ppf t =
  match t.locality with
  | No_data -> Opcode.pp ppf t.opcode
  | Sequential -> Format.fprintf ppf "%a[seq]" Opcode.pp t.opcode
  | Strided s -> Format.fprintf ppf "%a[stride %d]" Opcode.pp t.opcode s
  | Random_within n -> Format.fprintf ppf "%a[rand %dB]" Opcode.pp t.opcode n

let equal a b = Opcode.equal a.opcode b.opcode && a.locality = b.locality
