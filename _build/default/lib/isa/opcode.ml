type alu_kind = Add | Sub | Logic | Move | Compare

type t =
  | Alu of alu_kind
  | Mac
  | Load
  | Store
  | Branch
  | Jump
  | Call
  | Return
  | Nop

let is_control = function
  | Branch | Jump | Call | Return -> true
  | Alu _ | Mac | Load | Store | Nop -> false

let is_memory = function
  | Load | Store -> true
  | Alu _ | Mac | Branch | Jump | Call | Return | Nop -> false

let execute_latency = function
  | Alu _ | Nop -> 1
  | Mac -> 3
  | Load | Store -> 1
  | Branch | Jump | Call | Return -> 1

let mnemonic = function
  | Alu Add -> "add"
  | Alu Sub -> "sub"
  | Alu Logic -> "logic"
  | Alu Move -> "mov"
  | Alu Compare -> "cmp"
  | Mac -> "mac"
  | Load -> "ldr"
  | Store -> "str"
  | Branch -> "b.cond"
  | Jump -> "b"
  | Call -> "bl"
  | Return -> "ret"
  | Nop -> "nop"

let pp ppf t = Format.pp_print_string ppf (mnemonic t)
let equal (a : t) (b : t) = a = b

let all =
  [
    Alu Add;
    Alu Sub;
    Alu Logic;
    Alu Move;
    Alu Compare;
    Mac;
    Load;
    Store;
    Branch;
    Jump;
    Call;
    Return;
    Nop;
  ]
