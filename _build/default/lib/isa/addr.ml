type t = int

let instruction_bytes = 4

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  if not (is_power_of_two n) then
    invalid_arg (Printf.sprintf "Addr.log2: %d is not a power of two" n);
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let check_alignment alignment =
  if not (is_power_of_two alignment) then
    invalid_arg
      (Printf.sprintf "Addr: alignment %d is not a power of two" alignment)

let is_aligned a ~alignment =
  check_alignment alignment;
  a land (alignment - 1) = 0

let align_down a ~alignment =
  check_alignment alignment;
  a land lnot (alignment - 1)

let align_up a ~alignment =
  check_alignment alignment;
  (a + alignment - 1) land lnot (alignment - 1)

let offset_in a ~alignment =
  check_alignment alignment;
  a land (alignment - 1)

let next_instruction a = a + instruction_bytes
let pp ppf a = Format.fprintf ppf "0x%08x" a
let to_string a = Format.asprintf "%a" pp a
