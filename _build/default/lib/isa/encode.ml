let opcode_code = function
  | Opcode.Alu Opcode.Add -> 0
  | Opcode.Alu Opcode.Sub -> 1
  | Opcode.Alu Opcode.Logic -> 2
  | Opcode.Alu Opcode.Move -> 3
  | Opcode.Alu Opcode.Compare -> 4
  | Opcode.Mac -> 5
  | Opcode.Load -> 6
  | Opcode.Store -> 7
  | Opcode.Branch -> 8
  | Opcode.Jump -> 9
  | Opcode.Call -> 10
  | Opcode.Return -> 11
  | Opcode.Nop -> 12

let opcode_of_code = function
  | 0 -> Some (Opcode.Alu Opcode.Add)
  | 1 -> Some (Opcode.Alu Opcode.Sub)
  | 2 -> Some (Opcode.Alu Opcode.Logic)
  | 3 -> Some (Opcode.Alu Opcode.Move)
  | 4 -> Some (Opcode.Alu Opcode.Compare)
  | 5 -> Some Opcode.Mac
  | 6 -> Some Opcode.Load
  | 7 -> Some Opcode.Store
  | 8 -> Some Opcode.Branch
  | 9 -> Some Opcode.Jump
  | 10 -> Some Opcode.Call
  | 11 -> Some Opcode.Return
  | 12 -> Some Opcode.Nop
  | _ -> None

(* Locality class in bits 25..24; the immediate carries the
   parameter (stride in words, or working-set size in 64-byte units). *)
let locality_parts = function
  | Instr.No_data -> (0, 0)
  | Instr.Sequential -> (1, 0)
  | Instr.Strided stride -> (2, stride / 4)
  | Instr.Random_within ws -> (3, ws / 64)

let locality_of_parts cls imm =
  match cls with
  | 0 -> Ok Instr.No_data
  | 1 -> Ok Instr.Sequential
  | 2 -> Ok (Instr.Strided (imm * 4))
  | 3 -> Ok (Instr.Random_within (imm * 64))
  | _ -> Error "invalid locality class"

let imm_mask = 0xFF_FFFF
let imm_min = -(1 lsl 23)
let imm_max = (1 lsl 23) - 1

let instruction_word (instr : Instr.t) ~pc ~target =
  let opcode = instr.Instr.opcode in
  let cls, imm =
    match (Opcode.is_control opcode, target) with
    | true, None ->
        if opcode = Opcode.Return then (0, 0)
        else invalid_arg "Encode.instruction_word: transfer without target"
    | true, Some target ->
        let displacement = (target - pc) / Addr.instruction_bytes in
        if displacement < imm_min || displacement > imm_max then
          invalid_arg "Encode.instruction_word: displacement overflow";
        (0, displacement land imm_mask)
    | false, Some _ ->
        invalid_arg "Encode.instruction_word: target on a plain instruction"
    | false, None ->
        let cls, param = locality_parts instr.Instr.locality in
        if param > imm_max then
          invalid_arg "Encode.instruction_word: locality parameter overflow";
        (cls, param)
  in
  Int32.of_int
    ((opcode_code opcode lsl 26) lor (cls lsl 24) lor (imm land imm_mask))

let decode word ~pc =
  let ( let* ) = Result.bind in
  let w = Int32.to_int word land 0xFFFF_FFFF in
  let code = (w lsr 26) land 0x3F in
  let cls = (w lsr 24) land 0x3 in
  let imm = w land imm_mask in
  let* opcode =
    match opcode_of_code code with
    | Some op -> Ok op
    | None -> Error (Printf.sprintf "invalid opcode %d" code)
  in
  if Opcode.is_control opcode then begin
    if opcode = Opcode.Return then Ok (Instr.make opcode, None)
    else begin
      (* Sign-extend the 24-bit displacement. *)
      let displacement = if imm > imm_max then imm - (1 lsl 24) else imm in
      let target = pc + (displacement * Addr.instruction_bytes) in
      Ok (Instr.make opcode, Some target)
    end
  end
  else begin
    let* locality = locality_of_parts cls imm in
    match locality with
    | Instr.No_data when Opcode.is_memory opcode ->
        Error "memory instruction without locality"
    | Instr.No_data -> Ok (Instr.make opcode, None)
    | (Instr.Sequential | Instr.Strided _ | Instr.Random_within _) as l
      when Opcode.is_memory opcode ->
        Ok (Instr.make ~locality:l opcode, None)
    | Instr.Sequential | Instr.Strided _ | Instr.Random_within _ ->
        Error "locality on a non-memory instruction"
  end

let encode_block instrs ~pc ~targets =
  if Array.length instrs <> Array.length targets then
    invalid_arg "Encode.encode_block: targets length mismatch";
  let buf = Bytes.create (Array.length instrs * Addr.instruction_bytes) in
  Array.iteri
    (fun i instr ->
      let word =
        instruction_word instr
          ~pc:(pc + (i * Addr.instruction_bytes))
          ~target:targets.(i)
      in
      Bytes.set_int32_le buf (i * Addr.instruction_bytes) word)
    instrs;
  buf
