(** Byte addresses in the simulated 32-bit address space.

    Addresses are plain OCaml [int]s (63-bit on a 64-bit host), which
    comfortably hold the 32-bit space of the simulated XScale-like
    machine.  All arithmetic helpers here are pure. *)

type t = int
(** A byte address.  Invariant: [0 <= t < 2^32]. *)

val instruction_bytes : int
(** Size of one XR32 instruction in bytes (fixed-width: 4). *)

val is_aligned : t -> alignment:int -> bool
(** [is_aligned a ~alignment] is true when [a] is a multiple of
    [alignment].  [alignment] must be a power of two. *)

val align_down : t -> alignment:int -> t
(** Round [a] down to the nearest multiple of [alignment] (a power of
    two). *)

val align_up : t -> alignment:int -> t
(** Round [a] up to the nearest multiple of [alignment] (a power of
    two). *)

val offset_in : t -> alignment:int -> int
(** [offset_in a ~alignment] is [a mod alignment] for power-of-two
    [alignment]. *)

val next_instruction : t -> t
(** Address of the sequentially following instruction. *)

val is_power_of_two : int -> bool
(** True for positive powers of two. *)

val log2 : int -> int
(** [log2 n] for a positive power of two [n].
    @raise Invalid_argument otherwise. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x0000_0040]. *)

val to_string : t -> string
