lib/isa/encode.ml: Addr Array Bytes Instr Int32 Opcode Printf Result
