lib/isa/instr.ml: Addr Format Opcode
