lib/isa/addr.ml: Format Printf
