lib/isa/encode.mli: Addr Instr
