lib/isa/addr.mli: Format
