(** A single XR32 instruction as it appears inside a basic block.

    Control-flow targets are symbolic (basic-block identifiers owned
    by the CFG layer); the link-time layout pass later resolves them
    to concrete addresses.  Data addresses for loads and stores are
    produced by the workload's data-stream model at simulation time,
    so instructions only carry a small [data_locality] hint. *)

type data_locality =
  | No_data  (** not a memory instruction *)
  | Sequential  (** streaming / stride-1 access pattern *)
  | Strided of int  (** fixed stride in bytes *)
  | Random_within of int  (** uniform within a working set of N bytes *)

type t = { opcode : Opcode.t; locality : data_locality }

val make : ?locality:data_locality -> Opcode.t -> t
(** [make opcode] builds an instruction.  Memory opcodes default to
    [Sequential] locality; non-memory opcodes must use [No_data].
    @raise Invalid_argument on a locality/opcode mismatch. *)

val alu : Opcode.alu_kind -> t
val mac : t
val load : data_locality -> t
val store : data_locality -> t
val branch : t
val jump : t
val call : t
val return : t
val nop : t
val size_bytes : int
(** Every XR32 instruction occupies {!Addr.instruction_bytes}. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
