(** Synthetic program generation.

    Turns a {!Spec.t} into a well-formed ICFG plus the stochastic
    branch behaviour the trace walker needs.  Generation is structured
    (sequences, if-diamonds, natural loops, call sites), emits blocks
    in compiled order — every fall-through edge's target directly
    follows its source — and is fully deterministic in the spec's
    seed.

    Calls always target functions with a strictly larger id, so the
    call graph is acyclic and the walker's stack is bounded by the
    function count. *)

type t = {
  spec : Spec.t;
  graph : Wp_cfg.Icfg.t;
  taken_prob : float array;
      (** per block id: probability that the terminating branch is
          taken; meaningful only for [Branch] terminators *)
  hot_funcs : bool array;  (** per function id: member of the hot set *)
}

val generate : Spec.t -> t
(** @raise Invalid_argument if the spec fails {!Spec.validate}. *)

val hot_block : t -> Wp_cfg.Basic_block.id -> bool
(** Whether the block belongs to a hot function. *)
