(** SplitMix64: a small, fast, deterministic PRNG.

    Every stochastic choice in the workload generator and trace walker
    flows through an explicit [Rng.t], so a benchmark is a pure
    function of its specification — two runs with the same seed are
    bit-identical, which the tests rely on. *)

type t

val create : int -> t
(** Seed with any integer. *)

val copy : t -> t
val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> min:int -> max:int -> int
(** Uniform in [\[min, max\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> p:float -> bool
(** True with probability [p]. *)

val split : t -> t
(** Derive an independent stream (for per-function sub-generators). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
