(** The 23 MiBench benchmarks of the paper's evaluation (Section 5).

    Each specification mirrors the corresponding MiBench program's
    observable fetch behaviour: static code size, loop structure, hot
    working-set size, call-graph shape and memory intensity.  The
    excluded programs (lame, mad, typeset, ghostscript, gsm — rejected
    by the authors' gcc; basicmath, qsort, dijkstra, stringsearch —
    inconsistent train/test programs) are likewise omitted here. *)

val all : Spec.t list
(** In the order of the paper's Figure 4 x-axis. *)

val names : string list

val find : string -> Spec.t
(** @raise Not_found for an unknown name. *)

val tiny : Spec.t
(** A miniature benchmark for unit tests and the quickstart example:
    runs in milliseconds. *)
