type t = {
  name : string;
  seed : int;
  num_funcs : int;
  blocks_per_func_min : int;
  blocks_per_func_max : int;
  instrs_per_block_min : int;
  instrs_per_block_max : int;
  max_loop_depth : int;
  avg_loop_trips : int;
  hot_func_fraction : float;
  hot_call_bias : float;
  if_taken_bias : float;
  mem_ratio : float;
  mac_ratio : float;
  data_working_set_bytes : int;
  trace_blocks_large : int;
  trace_blocks_small : int;
}

let validate t =
  let check cond msg = if cond then Ok () else Error (t.name ^ ": " ^ msg) in
  let ( let* ) = Result.bind in
  let* () = check (t.num_funcs >= 1) "needs at least one function" in
  let* () =
    check
      (t.blocks_per_func_min >= 1 && t.blocks_per_func_min <= t.blocks_per_func_max)
      "bad blocks-per-function range"
  in
  let* () =
    check
      (t.instrs_per_block_min >= 1
      && t.instrs_per_block_min <= t.instrs_per_block_max)
      "bad instrs-per-block range"
  in
  let* () = check (t.max_loop_depth >= 0) "negative loop depth" in
  let* () = check (t.avg_loop_trips >= 1) "loops need at least one trip" in
  let frac x = x >= 0.0 && x <= 1.0 in
  let* () = check (frac t.hot_func_fraction) "hot_func_fraction out of [0,1]" in
  let* () = check (frac t.hot_call_bias) "hot_call_bias out of [0,1]" in
  let* () = check (frac t.if_taken_bias) "if_taken_bias out of [0,1]" in
  let* () =
    check (frac t.mem_ratio && frac t.mac_ratio && t.mem_ratio +. t.mac_ratio <= 1.0)
      "instruction mix fractions out of range"
  in
  let* () = check (t.data_working_set_bytes >= 64) "data working set too small" in
  let* () =
    check (t.trace_blocks_large >= 1 && t.trace_blocks_small >= 1)
      "trace budgets must be positive"
  in
  Ok ()

let static_code_estimate_bytes t =
  let avg_blocks = (t.blocks_per_func_min + t.blocks_per_func_max) / 2 in
  let avg_instrs = (t.instrs_per_block_min + t.instrs_per_block_max) / 2 in
  t.num_funcs * avg_blocks * avg_instrs * Wp_isa.Instr.size_bytes

let pp ppf t =
  Format.fprintf ppf "%s (seed %d, ~%d B code, %d funcs)" t.name t.seed
    (static_code_estimate_bytes t)
    t.num_funcs
