(** Block-level execution of a generated program.

    The walker interprets the ICFG: branches flip a coin with the
    block's (input-perturbed) taken probability, calls push the
    continuation, returns pop it, and when the program finishes the
    walker restarts at the entry — the benchmark is effectively rerun
    until the dynamic block budget is spent, as driver scripts do.

    The {e training} and {e evaluation} inputs differ in seed, budget
    and a small perturbation of every branch probability, so a profile
    gathered on the training input is honestly imperfect for the
    evaluation run — mirroring the paper's small/large MiBench input
    protocol (Section 5). *)

type input = Small | Large

val input_to_string : input -> string

type trace = {
  blocks : int array;  (** executed block ids, in order *)
  dynamic_instrs : int;
  restarts : int;  (** times the program ran to completion *)
}

val profile : Codegen.t -> input -> Wp_cfg.Profile.t
(** Execution counts only (what the compiler pass consumes). *)

val trace : Codegen.t -> input -> trace
(** Full block trace (what the simulator replays). *)

val trace_and_profile : Codegen.t -> input -> trace * Wp_cfg.Profile.t

val perturbed_probs : Codegen.t -> input -> float array
(** The per-input branch probabilities actually used (exposed for
    tests). *)
