open Wp_cfg

type input = Small | Large

let input_to_string = function Small -> "small" | Large -> "large"

type trace = { blocks : int array; dynamic_instrs : int; restarts : int }

let input_seed (p : Codegen.t) = function
  | Small -> p.spec.Spec.seed lxor 0x5EED_0001
  | Large -> p.spec.Spec.seed lxor 0x1A26_E000

let budget (p : Codegen.t) = function
  | Small -> p.spec.Spec.trace_blocks_small
  | Large -> p.spec.Spec.trace_blocks_large

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

(* Data-dependent branch behaviour: each input shifts every branch
   probability by a small deterministic amount. *)
let perturbed_probs (p : Codegen.t) input =
  let rng = Rng.create (input_seed p input) in
  Array.map
    (fun prob -> clamp 0.02 0.98 (prob +. ((Rng.float rng -. 0.5) *. 0.08)))
    p.taken_prob

(* One walk step per block; [record] sees every executed block. *)
let walk (p : Codegen.t) input ~record =
  let graph = p.graph in
  let probs = perturbed_probs p input in
  let rng = Rng.create (input_seed p input * 31 + 7) in
  let budget = budget p input in
  let entry = Icfg.entry graph in
  let dynamic_instrs = ref 0 in
  let restarts = ref 0 in
  let stack = ref [] in
  let current = ref entry in
  let executed = ref 0 in
  while !executed < budget do
    let id = !current in
    record id;
    incr executed;
    dynamic_instrs :=
      !dynamic_instrs + Basic_block.size_instrs (Icfg.block graph id);
    let next =
      match Basic_block.terminator (Icfg.block graph id) with
      | Wp_isa.Opcode.Branch ->
          if Rng.bool rng ~p:probs.(id) then Icfg.taken_succ graph id
          else Icfg.fallthrough_succ graph id
      | Wp_isa.Opcode.Jump -> Icfg.taken_succ graph id
      | Wp_isa.Opcode.Call -> begin
          match (Icfg.call_target graph id, Icfg.fallthrough_succ graph id) with
          | Some callee, Some cont ->
              stack := cont :: !stack;
              Some callee
          | (None | Some _), _ -> None
        end
      | Wp_isa.Opcode.Return -> begin
          match !stack with
          | cont :: rest ->
              stack := rest;
              Some cont
          | [] -> None
        end
      | Wp_isa.Opcode.Alu _ | Mac | Load | Store | Nop ->
          Icfg.fallthrough_succ graph id
    in
    match next with
    | Some b -> current := b
    | None ->
        (* Program finished (return from main): rerun. *)
        incr restarts;
        stack := [];
        current := entry
  done;
  (!dynamic_instrs, !restarts)

let profile p input =
  let prof = Profile.create ~num_blocks:(Icfg.num_blocks p.Codegen.graph) in
  let _ = walk p input ~record:(fun id -> Profile.record_block prof id) in
  prof

let trace p input =
  let n = budget p input in
  let blocks = Array.make n 0 in
  let i = ref 0 in
  let dynamic_instrs, restarts =
    walk p input ~record:(fun id ->
        blocks.(!i) <- id;
        incr i)
  in
  { blocks; dynamic_instrs; restarts }

let trace_and_profile p input =
  let n = budget p input in
  let prof = Profile.create ~num_blocks:(Icfg.num_blocks p.Codegen.graph) in
  let blocks = Array.make n 0 in
  let i = ref 0 in
  let dynamic_instrs, restarts =
    walk p input ~record:(fun id ->
        blocks.(!i) <- id;
        incr i;
        Profile.record_block prof id)
  in
  ({ blocks; dynamic_instrs; restarts }, prof)
