type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 random bits: [Int64.to_int] truncates to the native 63-bit
     int, so a 63-bit value could come out negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t ~min ~max =
  if max < min then invalid_arg "Rng.int_in: max < min";
  min + int t (max - min + 1)

let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits53 *. (1.0 /. 9007199254740992.0)

let bool t ~p = float t < p

let split t = { state = mix64 (next_int64 t) }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
