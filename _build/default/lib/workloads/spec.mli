(** Benchmark specifications.

    A specification fully determines a synthetic benchmark: the shape
    of its code (functions, blocks, loops, calls), the statistics of
    its dynamic behaviour (hot set, branch bias, memory intensity) and
    its seed.  {!Mibench} provides 23 specifications mirroring the
    MiBench programs the paper evaluates. *)

type t = {
  name : string;
  seed : int;
  num_funcs : int;
  blocks_per_func_min : int;
  blocks_per_func_max : int;
  instrs_per_block_min : int;
  instrs_per_block_max : int;
  max_loop_depth : int;  (** nesting of generated loops *)
  avg_loop_trips : int;  (** expected iterations of one loop level *)
  hot_func_fraction : float;
      (** fraction of functions that form the hot working set *)
  hot_call_bias : float;
      (** probability that a call site targets a hot function *)
  if_taken_bias : float;  (** mean taken probability of if-branches *)
  mem_ratio : float;  (** loads+stores as a fraction of instructions *)
  mac_ratio : float;  (** multiply-accumulate fraction *)
  data_working_set_bytes : int;
  trace_blocks_large : int;  (** dynamic block budget, evaluation input *)
  trace_blocks_small : int;  (** dynamic block budget, training input *)
}

val validate : t -> (unit, string) result
(** Range checks on every field. *)

val static_code_estimate_bytes : t -> int
(** Rough expected binary size, for documentation and tests. *)

val pp : Format.formatter -> t -> unit
