lib/workloads/codegen.mli: Spec Wp_cfg
