lib/workloads/rng.mli:
