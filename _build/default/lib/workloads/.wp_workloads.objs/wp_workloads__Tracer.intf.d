lib/workloads/tracer.mli: Codegen Wp_cfg
