lib/workloads/tracer.ml: Array Basic_block Codegen Icfg Profile Rng Spec Wp_cfg Wp_isa
