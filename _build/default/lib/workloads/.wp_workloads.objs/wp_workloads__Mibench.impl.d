lib/workloads/mibench.ml: List Spec
