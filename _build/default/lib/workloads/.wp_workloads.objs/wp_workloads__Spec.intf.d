lib/workloads/spec.mli: Format
