lib/workloads/codegen.ml: Array Basic_block Edge Func Icfg Instr List Opcode Printf Rng Spec Wp_cfg Wp_isa
