lib/workloads/spec.ml: Format Result Wp_isa
