lib/workloads/mibench.mli: Spec
