type t = {
  blocks : Basic_block.t array;
  funcs : Func.t array;
  succs : Edge.t list array;  (** out-edges per block id *)
  entry : Basic_block.id;
  original_order : Basic_block.id array;
}

let num_blocks t = Array.length t.blocks
let num_funcs t = Array.length t.funcs
let block t id = t.blocks.(id)
let blocks t = t.blocks
let func t id = t.funcs.(id)
let funcs t = t.funcs
let successors t id = t.succs.(id)

let find_succ t id kind =
  let matches (e : Edge.t) = e.kind = kind in
  match List.find_opt matches t.succs.(id) with
  | Some e -> Some e.dst
  | None -> None

let fallthrough_succ t id = find_succ t id Edge.Fallthrough
let taken_succ t id = find_succ t id Edge.Taken
let call_target t id = find_succ t id Edge.Call_to
let entry t = t.entry
let original_order t = t.original_order

let total_static_instrs t =
  Array.fold_left (fun acc b -> acc + Basic_block.size_instrs b) 0 t.blocks

let total_static_bytes t = total_static_instrs t * Wp_isa.Instr.size_bytes

(* Validation: the terminator of each block must agree with its
   out-edge multiset, fall-through targets must be unique, and call
   targets must be function entries. *)
let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let count kind es =
    List.length (List.filter (fun (e : Edge.t) -> e.kind = kind) es)
  in
  let func_entries =
    Array.fold_left
      (fun acc (f : Func.t) -> f.entry :: acc)
      [] t.funcs
  in
  let incoming_ft = Array.make (Array.length t.blocks) 0 in
  Array.iteri
    (fun id b ->
      let es = t.succs.(id) in
      let ft = count Edge.Fallthrough es
      and tk = count Edge.Taken es
      and cl = count Edge.Call_to es in
      (match Basic_block.terminator b with
      | Wp_isa.Opcode.Branch ->
          if not (ft = 1 && tk = 1 && cl = 0) then
            err "B%d: branch needs 1 fallthrough + 1 taken (has %d/%d/%d)" id
              ft tk cl
      | Wp_isa.Opcode.Jump ->
          if not (ft = 0 && tk = 1 && cl = 0) then
            err "B%d: jump needs exactly 1 taken edge (has %d/%d/%d)" id ft tk
              cl
      | Wp_isa.Opcode.Call ->
          if not (ft = 1 && tk = 0 && cl = 1) then
            err "B%d: call needs 1 call + 1 fallthrough (has %d/%d/%d)" id ft
              tk cl
      | Wp_isa.Opcode.Return ->
          if es <> [] then err "B%d: return block must have no out-edges" id
      | Wp_isa.Opcode.Alu _ | Mac | Load | Store | Nop ->
          if not (ft = 1 && tk = 0 && cl = 0) then
            err "B%d: plain block needs exactly 1 fallthrough (has %d/%d/%d)"
              id ft tk cl);
      List.iter
        (fun (e : Edge.t) ->
          if e.dst < 0 || e.dst >= Array.length t.blocks then
            err "B%d: edge to unknown block B%d" id e.dst
          else begin
            (match e.kind with
            | Edge.Fallthrough -> incoming_ft.(e.dst) <- incoming_ft.(e.dst) + 1
            | Edge.Taken -> ()
            | Edge.Call_to ->
                if not (List.mem e.dst func_entries) then
                  err "B%d: call edge to B%d, which is no function entry" id
                    e.dst)
          end)
        es)
    t.blocks;
  Array.iteri
    (fun id n ->
      if n > 1 then err "B%d: %d incoming fall-through edges (max 1)" id n)
    incoming_ft;
  if t.entry < 0 || t.entry >= Array.length t.blocks then
    err "entry block B%d does not exist" t.entry;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp_summary ppf t =
  Format.fprintf ppf "ICFG: %d functions, %d blocks, %d instructions (%d B)"
    (num_funcs t) (num_blocks t) (total_static_instrs t)
    (total_static_bytes t)

module Builder = struct
  type graph = t

  type t = {
    mutable b_blocks : Basic_block.t list;  (** reversed *)
    mutable b_nblocks : int;
    mutable b_funcs : (string * Basic_block.id option ref * Basic_block.id list ref) list;
        (** reversed: name, entry, reversed block ids *)
    mutable b_nfuncs : int;
    mutable b_edges : Edge.t list;  (** reversed *)
    mutable b_entry : Basic_block.id option;
  }

  let create () =
    {
      b_blocks = [];
      b_nblocks = 0;
      b_funcs = [];
      b_nfuncs = 0;
      b_edges = [];
      b_entry = None;
    }

  let add_func b ~name =
    let id = b.b_nfuncs in
    b.b_funcs <- (name, ref None, ref []) :: b.b_funcs;
    b.b_nfuncs <- id + 1;
    id

  let nth_func b id =
    let idx_from_head = b.b_nfuncs - 1 - id in
    if id < 0 || idx_from_head < 0 then
      invalid_arg "Icfg.Builder.add_block: unknown function";
    List.nth b.b_funcs idx_from_head

  let add_block b ~func instrs =
    let id = b.b_nblocks in
    let _, entry, blocks = nth_func b func in
    let block = Basic_block.make ~id ~func ~instrs in
    b.b_blocks <- block :: b.b_blocks;
    b.b_nblocks <- id + 1;
    (match !entry with None -> entry := Some id | Some _ -> ());
    blocks := id :: !blocks;
    id

  let add_edge b ~src ~dst kind =
    b.b_edges <- Edge.make ~src ~dst kind :: b.b_edges

  let set_entry b id = b.b_entry <- Some id

  let finish b : graph =
    let blocks = Array.of_list (List.rev b.b_blocks) in
    let funcs =
      List.rev b.b_funcs
      |> List.mapi (fun id (name, entry, block_ids) ->
             match !entry with
             | None ->
                 invalid_arg
                   (Printf.sprintf "Icfg.Builder.finish: function %s is empty"
                      name)
             | Some e ->
                 Func.make ~id ~name ~entry:e ~blocks:(List.rev !block_ids))
      |> Array.of_list
    in
    let succs = Array.make (Array.length blocks) [] in
    List.iter
      (fun (e : Edge.t) ->
        if e.src < 0 || e.src >= Array.length blocks then
          invalid_arg
            (Printf.sprintf "Icfg.Builder.finish: edge from unknown B%d" e.src);
        succs.(e.src) <- e :: succs.(e.src))
      b.b_edges;
    let entry =
      match b.b_entry with
      | Some e -> e
      | None ->
          if Array.length funcs = 0 then
            invalid_arg "Icfg.Builder.finish: no functions";
          funcs.(0).Func.entry
    in
    let original_order = Array.init (Array.length blocks) (fun i -> i) in
    let graph = { blocks; funcs; succs; entry; original_order } in
    match validate graph with
    | Ok () -> graph
    | Error errs ->
        invalid_arg
          ("Icfg.Builder.finish: invalid graph:\n  " ^ String.concat "\n  " errs)
end
