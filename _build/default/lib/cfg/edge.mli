(** Control-flow edges of the ICFG.

    Return edges are not materialised: the trace walker maintains a
    call stack, and a [Return] terminator pops it.  The continuation
    of a call is recorded as the call block's [Fallthrough] edge, which
    is exactly the "call/return site pair" ordering constraint the
    way-placement pass must respect (paper Section 3). *)

type kind =
  | Fallthrough
      (** [dst] must be laid out immediately after [src]: either plain
          sequential flow, the not-taken side of a conditional branch,
          or the post-return continuation of a call. *)
  | Taken  (** target of a conditional branch or unconditional jump *)
  | Call_to  (** call to the entry block of the callee *)

type t = { src : Basic_block.id; dst : Basic_block.id; kind : kind }

val make : src:Basic_block.id -> dst:Basic_block.id -> kind -> t
val is_layout_constraint : t -> bool
(** True for edges that force [dst] to follow [src] in the binary
    (fall-through edges, including call continuations). *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
