(** Intra-procedural control-flow analyses: dominators and natural
    loops.

    A link-time rewriter like the paper's Diablo substrate carries
    these analyses; here they power workload statistics (loop nesting
    of generated benchmarks), the CLI's layout inspector, and tests
    that check the generator emits the loop shapes its specification
    asks for.  Analyses follow only intra-procedural edges
    (fall-through and taken); call edges are ignored. *)

type loop = {
  header : Basic_block.id;
  blocks : Basic_block.id list;  (** includes the header; sorted *)
  back_edges : (Basic_block.id * Basic_block.id) list;
      (** [(latch, header)] pairs *)
}

val reverse_postorder :
  Icfg.t -> entry:Basic_block.id -> Basic_block.id array
(** Blocks of the entry's function reachable intra-procedurally, in
    reverse postorder (entry first). *)

val immediate_dominators :
  Icfg.t -> entry:Basic_block.id -> (Basic_block.id * Basic_block.id) list
(** [(block, idom)] for every reachable block except the entry
    (Cooper-Harvey-Kennedy iterative algorithm). *)

val dominates :
  Icfg.t -> entry:Basic_block.id -> Basic_block.id -> Basic_block.id -> bool
(** [dominates g ~entry a b]: every path from the entry to [b] passes
    through [a].  A block dominates itself. *)

val natural_loops : Icfg.t -> entry:Basic_block.id -> loop list
(** Natural loops of the entry's function: one per header, merging the
    bodies of back edges that share a header.  A back edge is an edge
    [latch -> header] where [header] dominates [latch]. *)

val loop_depth :
  Icfg.t -> entry:Basic_block.id -> Basic_block.id -> int
(** Number of natural loops containing the block (0 = not in a loop). *)

val function_summary :
  Icfg.t -> Func.t -> string
(** One-line description: blocks, loops, max nesting (for the CLI). *)
