lib/cfg/profile.mli: Basic_block Format Icfg
