lib/cfg/basic_block.mli: Format Wp_isa
