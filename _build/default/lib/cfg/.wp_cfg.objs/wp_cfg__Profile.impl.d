lib/cfg/profile.ml: Array Basic_block Format Icfg
