lib/cfg/analysis.mli: Basic_block Func Icfg
