lib/cfg/edge.ml: Basic_block Format
