lib/cfg/func.mli: Basic_block Format
