lib/cfg/func.ml: Basic_block Format List
