lib/cfg/analysis.ml: Array Basic_block Edge Func Hashtbl Icfg List Option Printf
