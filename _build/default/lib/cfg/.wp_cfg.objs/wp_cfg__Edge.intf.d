lib/cfg/edge.mli: Basic_block Format
