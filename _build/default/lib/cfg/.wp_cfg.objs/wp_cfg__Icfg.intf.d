lib/cfg/icfg.mli: Basic_block Edge Format Func Wp_isa
