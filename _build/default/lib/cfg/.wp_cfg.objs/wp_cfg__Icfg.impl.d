lib/cfg/icfg.ml: Array Basic_block Edge Format Func List Printf String Wp_isa
