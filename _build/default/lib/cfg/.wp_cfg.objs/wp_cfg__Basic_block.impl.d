lib/cfg/basic_block.ml: Array Format Wp_isa
