(** The interprocedural control-flow graph (ICFG).

    This mirrors the representation the paper's Diablo-based pass works
    on: every basic block of every function, linked by intra-procedural
    edges and call edges, annotated later with profile counts.  The
    order in which blocks are added to the builder is remembered as the
    {e original} binary order — the layout the baseline and the
    way-memoization scheme run with. *)

type t

val num_blocks : t -> int
val num_funcs : t -> int
val block : t -> Basic_block.id -> Basic_block.t
val blocks : t -> Basic_block.t array
(** All blocks indexed by id.  Do not mutate. *)

val func : t -> Func.id -> Func.t
val funcs : t -> Func.t array
val successors : t -> Basic_block.id -> Edge.t list
val fallthrough_succ : t -> Basic_block.id -> Basic_block.id option
val taken_succ : t -> Basic_block.id -> Basic_block.id option
val call_target : t -> Basic_block.id -> Basic_block.id option
(** Entry block of the callee, for blocks ending in a call. *)

val entry : t -> Basic_block.id
(** Entry block of the program ([main]'s entry). *)

val original_order : t -> Basic_block.id array
(** Block ids in the order the compiler emitted them (the unoptimised
    binary layout). *)

val total_static_instrs : t -> int
(** Sum of static instruction counts over all blocks. *)

val total_static_bytes : t -> int

val validate : t -> (unit, string list) result
(** Structural well-formedness: terminators agree with out-edges, at
    most one incoming fall-through per block, call targets are function
    entries, the entry block exists.  Builders run this before
    returning, so a [t] in hand is always valid. *)

val pp_summary : Format.formatter -> t -> unit

(** Imperative construction interface. *)
module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_func : t -> name:string -> Func.id
  (** Declares a function; its entry is the first block added for it. *)

  val add_block : t -> func:Func.id -> Wp_isa.Instr.t array -> Basic_block.id
  (** Appends a block to [func]; addition order defines the original
      binary order. *)

  val add_edge :
    t -> src:Basic_block.id -> dst:Basic_block.id -> Edge.kind -> unit

  val set_entry : t -> Basic_block.id -> unit
  (** Marks the program entry block (defaults to the first block of the
      first function). *)

  val finish : t -> graph
  (** Freezes and validates.
      @raise Invalid_argument listing every validation error. *)
end
