(** Dynamic profiles: per-block execution counts.

    A profile is gathered by running the program on its {e training}
    input (the MiBench "small" set in the paper) and later guides the
    way-placement pass when the program runs on its {e evaluation}
    input (the "large" set).  Keeping the two inputs distinct is what
    makes the reported savings honest. *)

type t

val create : num_blocks:int -> t
(** All-zero profile for a graph with [num_blocks] blocks. *)

val record_block : t -> Basic_block.id -> unit
(** Count one execution of the block. *)

val record_block_n : t -> Basic_block.id -> int -> unit
val block_count : t -> Basic_block.id -> int
val num_blocks : t -> int

val dynamic_instrs : t -> Icfg.t -> int
(** Total dynamic instruction count implied by the profile. *)

val block_dynamic_instrs : t -> Icfg.t -> Basic_block.id -> int
(** [exec count * static size] for one block — the per-block weight the
    chain placer sums (paper Section 3). *)

val hottest_first : t -> Basic_block.id array
(** Block ids sorted by descending execution count (ties by id). *)

val coverage : t -> Icfg.t -> fraction_of_blocks:float -> float
(** Fraction of all dynamic instructions covered by the hottest
    [fraction_of_blocks] of static blocks — the locality statistic that
    motivates way-placement ("frequently executed instructions cause
    the majority of instruction cache accesses"). *)

val scale : t -> int -> t
(** Multiply every count (saturating at [max_int]); used in tests. *)

val pp : Format.formatter -> t -> unit
