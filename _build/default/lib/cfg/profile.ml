type t = { counts : int array }

let create ~num_blocks = { counts = Array.make num_blocks 0 }

let record_block t id = t.counts.(id) <- t.counts.(id) + 1

let record_block_n t id n =
  if n < 0 then invalid_arg "Profile.record_block_n: negative count";
  t.counts.(id) <- t.counts.(id) + n

let block_count t id = t.counts.(id)
let num_blocks t = Array.length t.counts

let dynamic_instrs t graph =
  let total = ref 0 in
  Array.iteri
    (fun id c ->
      total := !total + (c * Basic_block.size_instrs (Icfg.block graph id)))
    t.counts;
  !total

let block_dynamic_instrs t graph id =
  t.counts.(id) * Basic_block.size_instrs (Icfg.block graph id)

let hottest_first t =
  let ids = Array.init (Array.length t.counts) (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare t.counts.(b) t.counts.(a) with
      | 0 -> compare a b
      | c -> c)
    ids;
  ids

let coverage t graph ~fraction_of_blocks =
  if fraction_of_blocks < 0.0 || fraction_of_blocks > 1.0 then
    invalid_arg "Profile.coverage: fraction out of [0,1]";
  let total = dynamic_instrs t graph in
  if total = 0 then 0.0
  else begin
    let ids = hottest_first t in
    let take =
      int_of_float (ceil (fraction_of_blocks *. float_of_int (Array.length ids)))
    in
    let covered = ref 0 in
    for i = 0 to min take (Array.length ids) - 1 do
      covered := !covered + block_dynamic_instrs t graph ids.(i)
    done;
    float_of_int !covered /. float_of_int total
  end

let scale t k =
  if k < 0 then invalid_arg "Profile.scale: negative factor";
  { counts = Array.map (fun c -> c * k) t.counts }

let pp ppf t =
  let executed = Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 t.counts in
  Format.fprintf ppf "profile: %d/%d blocks executed" executed
    (Array.length t.counts)
