type loop = {
  header : Basic_block.id;
  blocks : Basic_block.id list;
  back_edges : (Basic_block.id * Basic_block.id) list;
}

(* Intra-procedural successors: fall-through and taken edges only. *)
let intra_succs graph id =
  List.filter_map
    (fun (e : Edge.t) ->
      match e.kind with
      | Edge.Fallthrough | Edge.Taken -> Some e.dst
      | Edge.Call_to -> None)
    (Icfg.successors graph id)

let reverse_postorder graph ~entry =
  let n = Icfg.num_blocks graph in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter dfs (intra_succs graph id);
      order := id :: !order
    end
  in
  dfs entry;
  Array.of_list !order

(* Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm". *)
let compute_idoms graph ~entry =
  let rpo = reverse_postorder graph ~entry in
  let n = Icfg.num_blocks graph in
  let rpo_number = Array.make n (-1) in
  Array.iteri (fun i id -> rpo_number.(id) <- i) rpo;
  let preds = Array.make n [] in
  Array.iter
    (fun id ->
      List.iter
        (fun succ ->
          if rpo_number.(succ) >= 0 then preds.(succ) <- id :: preds.(succ))
        (intra_succs graph id))
    rpo;
  (* idom indexed by rpo number; -1 = undefined. *)
  let idom = Array.make (Array.length rpo) (-1) in
  idom.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if a > b then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to Array.length rpo - 1 do
      let id = rpo.(i) in
      let new_idom =
        List.fold_left
          (fun acc pred ->
            let p = rpo_number.(pred) in
            if p < 0 || idom.(p) = -1 then acc
            else match acc with -1 -> p | acc -> intersect acc p)
          (-1) preds.(id)
      in
      if new_idom >= 0 && idom.(i) <> new_idom then begin
        idom.(i) <- new_idom;
        changed := true
      end
    done
  done;
  (rpo, rpo_number, idom)

let immediate_dominators graph ~entry =
  let rpo, _, idom = compute_idoms graph ~entry in
  let result = ref [] in
  for i = Array.length rpo - 1 downto 1 do
    if idom.(i) >= 0 then result := (rpo.(i), rpo.(idom.(i))) :: !result
  done;
  !result

let dominates graph ~entry a b =
  let rpo, rpo_number, idom = compute_idoms graph ~entry in
  ignore rpo;
  let a_rpo = rpo_number.(a) and b_rpo = rpo_number.(b) in
  if a_rpo < 0 || b_rpo < 0 then false
  else begin
    (* Walk b's dominator chain up to the entry. *)
    let rec climb i = if i = a_rpo then true else if i = 0 then false else climb idom.(i) in
    climb b_rpo
  end

let natural_loops graph ~entry =
  let rpo, rpo_number, idom = compute_idoms graph ~entry in
  let dominates_rpo a_rpo b_rpo =
    let rec climb i = if i = a_rpo then true else if i = 0 then false else climb idom.(i) in
    climb b_rpo
  in
  (* Back edges: latch -> header with header dominating latch. *)
  let back_edges = ref [] in
  Array.iter
    (fun id ->
      List.iter
        (fun succ ->
          let h = rpo_number.(succ) and l = rpo_number.(id) in
          if h >= 0 && l >= 0 && dominates_rpo h l then
            back_edges := (id, succ) :: !back_edges)
        (intra_succs graph id))
    rpo;
  (* Group by header and flood the loop body backwards from each latch. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let existing = Option.value (Hashtbl.find_opt by_header header) ~default:[] in
      Hashtbl.replace by_header header (latch :: existing))
    !back_edges;
  let n = Icfg.num_blocks graph in
  let preds = Array.make n [] in
  Array.iter
    (fun id -> List.iter (fun s -> preds.(s) <- id :: preds.(s)) (intra_succs graph id))
    rpo;
  Hashtbl.fold
    (fun header latches acc ->
      let in_loop = Array.make n false in
      in_loop.(header) <- true;
      let rec flood id =
        if not in_loop.(id) then begin
          in_loop.(id) <- true;
          List.iter flood preds.(id)
        end
      in
      List.iter flood latches;
      let blocks = ref [] in
      for id = n - 1 downto 0 do
        if in_loop.(id) then blocks := id :: !blocks
      done;
      {
        header;
        blocks = !blocks;
        back_edges = List.map (fun latch -> (latch, header)) latches;
      }
      :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header b.header)

let loop_depth graph ~entry id =
  List.fold_left
    (fun acc loop -> if List.mem id loop.blocks then acc + 1 else acc)
    0
    (natural_loops graph ~entry)

let function_summary graph (f : Func.t) =
  let loops = natural_loops graph ~entry:f.Func.entry in
  let max_depth =
    List.fold_left
      (fun acc loop ->
        List.fold_left
          (fun acc id -> max acc (loop_depth graph ~entry:f.Func.entry id))
          acc loop.blocks)
      0 loops
  in
  Printf.sprintf "%s: %d blocks, %d loops, max nesting %d" f.Func.name
    (List.length f.Func.blocks)
    (List.length loops) max_depth
