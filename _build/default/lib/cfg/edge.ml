type kind = Fallthrough | Taken | Call_to
type t = { src : Basic_block.id; dst : Basic_block.id; kind : kind }

let make ~src ~dst kind = { src; dst; kind }

let is_layout_constraint t =
  match t.kind with Fallthrough -> true | Taken | Call_to -> false

let kind_to_string = function
  | Fallthrough -> "fallthrough"
  | Taken -> "taken"
  | Call_to -> "call"

let pp ppf t =
  Format.fprintf ppf "B%d -%s-> B%d" t.src (kind_to_string t.kind) t.dst
