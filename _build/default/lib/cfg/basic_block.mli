(** Basic blocks of the interprocedural control-flow graph.

    A basic block is a straight-line run of instructions with a single
    entry (its first instruction) and a single exit (its last).  Blocks
    are identified by dense integer ids assigned by {!Icfg.Builder};
    the id doubles as the index into every per-block array in the
    simulator, so lookups are O(1) everywhere. *)

type id = int
(** Dense block identifier, unique within one {!Icfg.t}. *)

type t = {
  id : id;
  func : int;  (** owning function id *)
  instrs : Wp_isa.Instr.t array;  (** non-empty *)
}

val make : id:id -> func:int -> instrs:Wp_isa.Instr.t array -> t
(** @raise Invalid_argument if [instrs] is empty or if a control
    instruction appears anywhere but last. *)

val size_instrs : t -> int
(** Static instruction count. *)

val size_bytes : t -> int
(** Static size in bytes ([size_instrs * 4]). *)

val terminator : t -> Wp_isa.Opcode.t
(** Opcode of the last instruction. *)

val falls_through : t -> bool
(** True when control can flow past the last instruction: the block
    ends in a non-control instruction, a conditional branch, or a call
    (whose continuation resumes after the callee returns). *)

val pp : Format.formatter -> t -> unit
