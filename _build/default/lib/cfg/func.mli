(** Functions (procedures) of the simulated program. *)

type id = int

type t = {
  id : id;
  name : string;
  entry : Basic_block.id;  (** block control enters on a call *)
  blocks : Basic_block.id list;  (** all blocks, entry first *)
}

val make :
  id:id -> name:string -> entry:Basic_block.id -> blocks:Basic_block.id list -> t
(** @raise Invalid_argument if [blocks] does not start with [entry]. *)

val pp : Format.formatter -> t -> unit
