type id = int
type t = { id : id; func : int; instrs : Wp_isa.Instr.t array }

let make ~id ~func ~instrs =
  let n = Array.length instrs in
  if n = 0 then invalid_arg "Basic_block.make: empty block";
  for i = 0 to n - 2 do
    if Wp_isa.Opcode.is_control instrs.(i).Wp_isa.Instr.opcode then
      invalid_arg "Basic_block.make: control instruction before block end"
  done;
  { id; func; instrs }

let size_instrs t = Array.length t.instrs
let size_bytes t = size_instrs t * Wp_isa.Instr.size_bytes
let terminator t = t.instrs.(Array.length t.instrs - 1).Wp_isa.Instr.opcode

let falls_through t =
  match terminator t with
  | Wp_isa.Opcode.Alu _ | Mac | Load | Store | Nop | Branch | Call -> true
  | Jump | Return -> false

let pp ppf t =
  Format.fprintf ppf "@[<h>B%d(f%d, %d instrs, ends %a)@]" t.id t.func
    (size_instrs t) Wp_isa.Opcode.pp (terminator t)
