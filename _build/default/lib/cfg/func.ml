type id = int

type t = {
  id : id;
  name : string;
  entry : Basic_block.id;
  blocks : Basic_block.id list;
}

let make ~id ~name ~entry ~blocks =
  (match blocks with
  | first :: _ when first = entry -> ()
  | [] | _ :: _ -> invalid_arg "Func.make: blocks must start with the entry");
  { id; name; entry; blocks }

let pp ppf t =
  Format.fprintf ppf "%s(f%d, %d blocks)" t.name t.id (List.length t.blocks)
