lib/cache/filter_cache.ml: Cam_cache Geometry Replacement
