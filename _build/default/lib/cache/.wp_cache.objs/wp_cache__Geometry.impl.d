lib/cache/geometry.ml: Format Printf Wp_isa
