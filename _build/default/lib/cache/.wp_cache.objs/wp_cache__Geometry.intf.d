lib/cache/geometry.mli: Format Wp_isa
