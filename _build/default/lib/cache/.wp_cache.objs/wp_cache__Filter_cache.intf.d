lib/cache/filter_cache.mli: Geometry Wp_isa
