lib/cache/drowsy.mli: Geometry
