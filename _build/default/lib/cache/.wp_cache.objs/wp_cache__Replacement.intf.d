lib/cache/replacement.mli:
