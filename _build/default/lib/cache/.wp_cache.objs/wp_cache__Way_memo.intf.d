lib/cache/way_memo.mli: Geometry Replacement Wp_isa
