lib/cache/way_memo.ml: Array Cam_cache Geometry List Wp_isa
