lib/cache/way_predict.mli: Geometry Replacement Wp_isa
