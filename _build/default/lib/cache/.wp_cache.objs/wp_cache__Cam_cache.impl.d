lib/cache/cam_cache.ml: Array Format Geometry Printf Replacement
