lib/cache/cam_cache.mli: Format Geometry Replacement Wp_isa
