lib/cache/drowsy.ml: Array Geometry
