lib/cache/way_predict.ml: Array Cam_cache Geometry
