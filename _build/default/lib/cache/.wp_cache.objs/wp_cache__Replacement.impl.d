lib/cache/replacement.ml: Printf
