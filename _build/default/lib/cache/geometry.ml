type t = { size_bytes : int; assoc : int; line_bytes : int }

let address_bits = 32

let make ~size_bytes ~assoc ~line_bytes =
  let pot = Wp_isa.Addr.is_power_of_two in
  if not (pot size_bytes && pot assoc && pot line_bytes) then
    invalid_arg "Geometry.make: size, assoc and line must be powers of two";
  if line_bytes < Wp_isa.Instr.size_bytes then
    invalid_arg "Geometry.make: line smaller than one instruction";
  if size_bytes < assoc * line_bytes then
    invalid_arg "Geometry.make: fewer lines than ways";
  { size_bytes; assoc; line_bytes }

let sets t = t.size_bytes / (t.assoc * t.line_bytes)
let lines t = t.size_bytes / t.line_bytes
let offset_bits t = Wp_isa.Addr.log2 t.line_bytes
let set_bits t = Wp_isa.Addr.log2 (sets t)
let tag_bits t = address_bits - offset_bits t - set_bits t
let way_bits t = Wp_isa.Addr.log2 t.assoc
let set_index t addr = (addr lsr offset_bits t) land (sets t - 1)
let tag_of t addr = addr lsr (offset_bits t + set_bits t)
let line_base t addr = addr land lnot (t.line_bytes - 1)
let same_line t a b = line_base t a = line_base t b
let way_select t ~tag = tag land (t.assoc - 1)
let way_of_addr t addr = way_select t ~tag:(tag_of t addr)
let instr_slot t addr = (addr land (t.line_bytes - 1)) / Wp_isa.Instr.size_bytes
let slots_per_line t = t.line_bytes / Wp_isa.Instr.size_bytes
let way_span_bytes t = sets t * t.line_bytes

let to_string t =
  let size =
    if t.size_bytes >= 1024 then Printf.sprintf "%dKB" (t.size_bytes / 1024)
    else Printf.sprintf "%dB" t.size_bytes
  in
  Printf.sprintf "%s/%dway/%dB" size t.assoc t.line_bytes

let pp ppf t = Format.pp_print_string ppf (to_string t)
