type t = Round_robin | Lru

let to_string = function Round_robin -> "round-robin" | Lru -> "lru"

let of_string = function
  | "round-robin" | "rr" -> Ok Round_robin
  | "lru" -> Ok Lru
  | s -> Error (Printf.sprintf "unknown replacement policy %S" s)

let all = [ Round_robin; Lru ]
