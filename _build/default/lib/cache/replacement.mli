(** Replacement policies for the CAM cache.

    The XScale uses round-robin replacement; LRU is provided as an
    ablation (DESIGN.md Section 5, item 5). *)

type t = Round_robin | Lru

val to_string : t -> string
val of_string : string -> (t, string) result
val all : t list
