type t = {
  tag_search_full_pj : float;
  tag_search_one_pj : float;
  tag_search_per_way_pj : float;
  data_word_pj : float;
  line_fill_pj : float;
  memo_data_factor : float;
  link_write_pj : float;
}

let of_geometry (p : Params.t) g =
  let tag_bits = float_of_int (Wp_cache.Geometry.tag_bits g) in
  let assoc = float_of_int g.Wp_cache.Geometry.assoc in
  let sets = float_of_int (Wp_cache.Geometry.sets g) in
  let line_bytes = float_of_int g.Wp_cache.Geometry.line_bytes in
  (* Match-line precharge/evaluate and search-line drive are both
     gated per way on a way-placement access (paper Section 4.2:
     "disable the tag check and match line precharging to all but the
     required way"), so the whole tag-side cost scales linearly with
     the number of ways searched. *)
  let per_way =
    tag_bits *. (p.cam_bit_compare_pj +. p.cam_drive_per_bit_pj)
  in
  let data_word = p.data_word_base_pj +. (p.data_word_per_set_pj *. sets) in
  {
    tag_search_full_pj = per_way *. assoc;
    tag_search_one_pj = per_way;
    tag_search_per_way_pj = per_way;
    data_word_pj = data_word;
    line_fill_pj = p.line_fill_per_byte_pj *. line_bytes;
    memo_data_factor = 1.0 +. Wp_cache.Way_memo.data_overhead_fraction g;
    link_write_pj = p.link_write_pj;
  }

let tag_search t ~ways =
  if ways < 0 then invalid_arg "Cam_energy.tag_search: negative way count";
  t.tag_search_per_way_pj *. float_of_int ways

let tlb_lookup_pj (p : Params.t) ~entries ~page_bytes =
  let vpn_bits =
    float_of_int (Wp_cache.Geometry.address_bits - Wp_isa.Addr.log2 page_bytes)
  in
  (vpn_bits *. p.tlb_bit_compare_pj *. float_of_int entries)
  +. (vpn_bits *. p.tlb_drive_per_bit_pj)

let pp ppf t =
  Format.fprintf ppf
    "tag(full)=%.3fpJ tag(one)=%.3fpJ word=%.3fpJ fill=%.3fpJ memo x%.3f"
    t.tag_search_full_pj t.tag_search_one_pj t.data_word_pj t.line_fill_pj
    t.memo_data_factor
