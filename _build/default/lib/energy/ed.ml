let ed_product ~energy_pj ~cycles = energy_pj *. float_of_int cycles

let normalised ~scheme ~baseline =
  if baseline <= 0.0 then invalid_arg "Ed.normalised: non-positive baseline";
  scheme /. baseline

let normalised_ed ~scheme_energy_pj ~scheme_cycles ~baseline_energy_pj
    ~baseline_cycles =
  normalised
    ~scheme:(ed_product ~energy_pj:scheme_energy_pj ~cycles:scheme_cycles)
    ~baseline:
      (ed_product ~energy_pj:baseline_energy_pj ~cycles:baseline_cycles)

let percent r = 100.0 *. r
