type t = {
  cam_bit_compare_pj : float;
  cam_drive_per_bit_pj : float;
  data_word_base_pj : float;
  data_word_per_set_pj : float;
  line_fill_per_byte_pj : float;
  memory_access_pj : float;
  link_write_pj : float;
  tlb_bit_compare_pj : float;
  tlb_drive_per_bit_pj : float;
  core_rest_pj_per_cycle : float;
  leak_awake_pj_per_line_cycle : float;
  leak_drowsy_factor : float;
  drowsy_wake_pj : float;
}

let default =
  {
    cam_bit_compare_pj = 0.0018;
    cam_drive_per_bit_pj = 0.0005;
    data_word_base_pj = 0.14;
    data_word_per_set_pj = 0.005;
    line_fill_per_byte_pj = 0.15;
    memory_access_pj = 120.0;
    link_write_pj = 0.05;
    tlb_bit_compare_pj = 0.0008;
    tlb_drive_per_bit_pj = 0.004;
    core_rest_pj_per_cycle = 1.6;
    leak_awake_pj_per_line_cycle = 0.0004;
    leak_drowsy_factor = 0.10;
    drowsy_wake_pj = 0.01;
  }

let with_core_rest t v = { t with core_rest_pj_per_cycle = v }
