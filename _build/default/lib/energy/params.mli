(** Technology constants of the energy model (picojoules).

    The absolute values are representative of a ~0.18um embedded part
    (XScale class); every figure in the paper is a {e normalised}
    energy or an ED product, so what matters is the relative scaling
    encoded in {!Cam_energy}: CAM search energy grows with tag width
    and with the number of ways searched, data access with line and
    array size, and the way-memoization scheme pays the link-storage
    overhead on every data-side access. *)

type t = {
  cam_bit_compare_pj : float;
      (** match-line energy per tag bit, per way searched *)
  cam_drive_per_bit_pj : float;
      (** search-line drive per tag bit, per way searched (the drive is
          way-gated on a way-placement access, paper Section 4.2) *)
  data_word_base_pj : float;  (** reading one instruction word, base cost *)
  data_word_per_set_pj : float;
      (** bit-line length growth: added word-read cost per set *)
  line_fill_per_byte_pj : float;  (** writing a refilled line *)
  memory_access_pj : float;
      (** off-chip read of one line (charged to the memory bucket) *)
  link_write_pj : float;  (** writing one way-memoization link *)
  tlb_bit_compare_pj : float;
  tlb_drive_per_bit_pj : float;
  core_rest_pj_per_cycle : float;
      (** pipeline + register files + clock tree: everything outside
          the instruction-memory subsystem and the D-cache *)
  leak_awake_pj_per_line_cycle : float;
      (** leakage of one awake cache line per cycle (used only when a
          configuration enables leakage accounting) *)
  leak_drowsy_factor : float;
      (** drowsy-mode leakage relative to awake (Flautner et al.) *)
  drowsy_wake_pj : float;  (** energy to wake one drowsy line *)
}

val default : t

val with_core_rest : t -> float -> t
(** Functional update of [core_rest_pj_per_cycle] (used by the ED
    sensitivity ablation). *)
