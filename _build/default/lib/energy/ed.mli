(** Energy-delay products and normalised metrics (paper Section 5:
    "the lower the value the better"). *)

val ed_product : energy_pj:float -> cycles:int -> float
(** Raw ED value, [energy * delay]. *)

val normalised :
  scheme:float -> baseline:float -> float
(** [scheme / baseline]; 1.0 means no change.
    @raise Invalid_argument if the baseline is not positive. *)

val normalised_ed :
  scheme_energy_pj:float ->
  scheme_cycles:int ->
  baseline_energy_pj:float ->
  baseline_cycles:int ->
  float
(** The number plotted in Figures 4(b), 5(b), 6(b). *)

val percent : float -> float
(** Ratio to percent (Figures 4(a), 5(a), 6(a) y-axes). *)
