lib/energy/account.ml: Format
