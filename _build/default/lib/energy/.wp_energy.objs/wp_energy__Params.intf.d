lib/energy/params.mli:
