lib/energy/ed.mli:
