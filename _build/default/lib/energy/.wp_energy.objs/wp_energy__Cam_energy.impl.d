lib/energy/cam_energy.ml: Format Params Wp_cache Wp_isa
