lib/energy/cam_energy.mli: Format Params Wp_cache
