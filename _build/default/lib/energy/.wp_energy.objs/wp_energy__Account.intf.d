lib/energy/account.mli: Format
