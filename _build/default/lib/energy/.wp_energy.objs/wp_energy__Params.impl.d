lib/energy/params.ml:
