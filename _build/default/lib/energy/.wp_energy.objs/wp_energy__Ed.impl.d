lib/energy/ed.ml:
