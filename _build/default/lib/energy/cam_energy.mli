(** Per-event energies for one CAM cache instance, derived from its
    geometry (paper Sections 2 and 4.2).

    An access decomposes into: precharging and evaluating the match
    line of every searched way (proportional to ways x tag bits),
    broadcasting the tag on the search lines (proportional to tag bits,
    paid once per access), and reading one data word on a hit.  A
    way-placement access searches a single way; a same-line access
    skips the tag side entirely; a way-memoization link-follow also
    skips it but pays the link-storage overhead on the data side. *)

type t = {
  tag_search_full_pj : float;  (** search all [assoc] ways *)
  tag_search_one_pj : float;  (** search a single way *)
  tag_search_per_way_pj : float;
      (** cost of each searched way; the tag side is fully way-gated,
          so searches scale linearly in the number of ways *)
  data_word_pj : float;  (** read one instruction word *)
  line_fill_pj : float;  (** write one refilled line *)
  memo_data_factor : float;
      (** way-memoization multiplier on [data_word_pj] and
          [line_fill_pj]: [1 + link overhead] (~1.21 for 32B/32-way) *)
  link_write_pj : float;
}

val of_geometry : Params.t -> Wp_cache.Geometry.t -> t

val tag_search : t -> ways:int -> float
(** Energy of a search touching [ways] match lines (zero for zero
    ways). *)

val tlb_lookup_pj : Params.t -> entries:int -> page_bytes:int -> float
(** Fully-associative TLB CAM search energy. *)

val pp : Format.formatter -> t -> unit
