type t = {
  entries : int;
  tags : int array;
  counters : int array;  (** 0..3; >=2 predicts taken *)
  valid : bool array;
}

let create ~entries =
  if not (Wp_isa.Addr.is_power_of_two entries) then
    invalid_arg "Btb.create: entries must be a positive power of two";
  {
    entries;
    tags = Array.make entries 0;
    counters = Array.make entries 0;
    valid = Array.make entries false;
  }

let slot t pc = (pc / Wp_isa.Instr.size_bytes) land (t.entries - 1)
let tag t pc = pc / Wp_isa.Instr.size_bytes / t.entries

let predict_taken t pc =
  let i = slot t pc in
  t.valid.(i) && t.tags.(i) = tag t pc && t.counters.(i) >= 2

let update t pc ~taken =
  let i = slot t pc in
  if t.valid.(i) && t.tags.(i) = tag t pc then
    t.counters.(i) <-
      (if taken then min 3 (t.counters.(i) + 1) else max 0 (t.counters.(i) - 1))
  else if taken then begin
    (* Allocate on taken branches only, as BTBs do. *)
    t.valid.(i) <- true;
    t.tags.(i) <- tag t pc;
    t.counters.(i) <- 2
  end

let entries t = t.entries

let reset t =
  Array.fill t.valid 0 t.entries false;
  Array.fill t.counters 0 t.entries 0
