lib/pipeline/core_model.mli: Wp_isa
