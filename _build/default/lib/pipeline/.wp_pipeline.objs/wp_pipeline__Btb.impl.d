lib/pipeline/btb.ml: Array Wp_isa
