lib/pipeline/btb.mli: Wp_isa
