lib/pipeline/core_model.ml: Btb Wp_isa
