let profile_magic = "wayplace-profile v1"
let order_magic = "wayplace-order v1"

let profile_to_string profile =
  let buf = Buffer.create 256 in
  let n = Wp_cfg.Profile.num_blocks profile in
  Buffer.add_string buf profile_magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "blocks %d\n" n);
  for id = 0 to n - 1 do
    let count = Wp_cfg.Profile.block_count profile id in
    if count > 0 then Buffer.add_string buf (Printf.sprintf "%d %d\n" id count)
  done;
  Buffer.contents buf

let lines_of_string s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let parse_header ~magic lines =
  match lines with
  | m :: header :: rest when m = magic -> begin
      match String.split_on_char ' ' header with
      | [ "blocks"; n ] -> begin
          match int_of_string_opt n with
          | Some n when n >= 0 -> Ok (n, rest)
          | Some _ | None -> Error "invalid block count"
        end
      | _ -> Error "missing 'blocks <n>' header"
    end
  | m :: _ when m <> magic -> Error (Printf.sprintf "bad magic %S" m)
  | _ -> Error "truncated header"

let profile_of_string s =
  let ( let* ) = Result.bind in
  let* n, rest = parse_header ~magic:profile_magic (lines_of_string s) in
  let profile = Wp_cfg.Profile.create ~num_blocks:n in
  let seen = Hashtbl.create 64 in
  let parse_line line =
    match String.split_on_char ' ' line with
    | [ id; count ] -> begin
        match (int_of_string_opt id, int_of_string_opt count) with
        | Some id, Some count when id >= 0 && id < n && count > 0 ->
            if Hashtbl.mem seen id then
              Error (Printf.sprintf "duplicate block %d" id)
            else begin
              Hashtbl.add seen id ();
              Wp_cfg.Profile.record_block_n profile id count;
              Ok ()
            end
        | _ -> Error (Printf.sprintf "invalid entry %S" line)
      end
    | _ -> Error (Printf.sprintf "invalid entry %S" line)
  in
  let rec go = function
    | [] -> Ok profile
    | line :: rest -> (
        match parse_line line with Ok () -> go rest | Error _ as e -> e)
  in
  go rest

let order_to_string order =
  let buf = Buffer.create 256 in
  Buffer.add_string buf order_magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "blocks %d\n" (Array.length order));
  Array.iter (fun id -> Buffer.add_string buf (Printf.sprintf "%d\n" id)) order;
  Buffer.contents buf

let order_of_string s =
  let ( let* ) = Result.bind in
  let* n, rest = parse_header ~magic:order_magic (lines_of_string s) in
  if List.length rest <> n then
    Error (Printf.sprintf "expected %d ids, found %d" n (List.length rest))
  else begin
    let order = Array.make n 0 in
    let seen = Array.make n false in
    let rec go i = function
      | [] -> Ok order
      | line :: rest -> begin
          match int_of_string_opt line with
          | Some id when id >= 0 && id < n && not seen.(id) ->
              seen.(id) <- true;
              order.(i) <- id;
              go (i + 1) rest
          | Some id when id >= 0 && id < n ->
              Error (Printf.sprintf "duplicate block %d" id)
          | Some _ | None -> Error (Printf.sprintf "invalid id %S" line)
        end
    in
    go 0 rest
  end

let save ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let load ~path =
  match open_in path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  | exception Sys_error msg -> Error msg
