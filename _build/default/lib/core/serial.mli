(** Plain-text serialisation of the pass's artifacts.

    A real deployment gathers the profile on a training device, ships
    it to the link step, and archives the block order that was shipped
    in the binary.  The formats are line-based, versioned and strict:
    loaders reject anything malformed rather than guessing.

    Profile format (only executed blocks are stored):
    {v
    wayplace-profile v1
    blocks <total block count>
    <block id> <count>
    ...
    v}

    Order format:
    {v
    wayplace-order v1
    blocks <count>
    <block id>
    ...
    v} *)

val profile_to_string : Wp_cfg.Profile.t -> string

val profile_of_string : string -> (Wp_cfg.Profile.t, string) result
(** Rejects: bad magic/version, counts out of range, duplicate or
    out-of-bounds block ids. *)

val order_to_string : Wp_cfg.Basic_block.id array -> string
val order_of_string : string -> (Wp_cfg.Basic_block.id array, string) result

val save : path:string -> string -> unit
(** Write a serialised artifact to a file. *)

val load : path:string -> (string, string) result
(** Read a file ([Error] on I/O failure). *)
