lib/core/serial.mli: Wp_cfg
