lib/core/wayplace.mli: Area Serial Wp_cache Wp_cfg Wp_energy Wp_isa Wp_layout Wp_pipeline Wp_sim Wp_tlb Wp_workloads
