lib/core/serial.ml: Array Buffer Fun Hashtbl List Printf Result String Wp_cfg
