lib/core/area.ml: Array Format Printf Wp_cfg Wp_layout
