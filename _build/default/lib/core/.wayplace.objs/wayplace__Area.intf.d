lib/core/area.mli: Format Wp_cfg Wp_isa Wp_layout
