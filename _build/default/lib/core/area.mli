(** Way-placement area sizing — the operating system's knob
    (paper Section 4.1).

    The compiler puts the best way-placement candidates at the start of
    the binary and progressively colder code later, so the OS can pick
    any area size (a multiple of the page size) without recompiling:
    statically, per program, or even while the program runs. *)

type t = private { bytes : int }

val of_bytes : page_bytes:int -> int -> t
(** @raise Invalid_argument unless positive and page-aligned. *)

val of_kilobytes : page_bytes:int -> int -> t
val bytes : t -> int
val pages : t -> page_bytes:int -> int

val covers : t -> code_base:Wp_isa.Addr.t -> Wp_isa.Addr.t -> bool
(** Is the address inside the area? *)

val coverage :
  t ->
  graph:Wp_cfg.Icfg.t ->
  profile:Wp_cfg.Profile.t ->
  layout:Wp_layout.Binary_layout.t ->
  float
(** Fraction of profiled dynamic instructions that the area covers
    under the given layout — the statistic an OS policy would use. *)

val choose :
  page_bytes:int ->
  max_bytes:int ->
  target_coverage:float ->
  graph:Wp_cfg.Icfg.t ->
  profile:Wp_cfg.Profile.t ->
  layout:Wp_layout.Binary_layout.t ->
  t
(** Smallest page-multiple area (up to [max_bytes]) whose coverage
    reaches [target_coverage]; returns the [max_bytes] area when the
    target is unreachable.  This is the "OS chooses the best sized
    way-placement area" policy of Section 4.1, and what
    [examples/area_tuning.ml] demonstrates.
    @raise Invalid_argument on a non-positive or non-page-multiple
    [max_bytes], or a target outside [0,1]. *)

val pp : Format.formatter -> t -> unit
