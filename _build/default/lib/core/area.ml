type t = { bytes : int }

let of_bytes ~page_bytes bytes =
  if bytes <= 0 then invalid_arg "Area.of_bytes: must be positive";
  if bytes mod page_bytes <> 0 then
    invalid_arg
      (Printf.sprintf "Area.of_bytes: %d is not a multiple of the %d B page"
         bytes page_bytes);
  { bytes }

let of_kilobytes ~page_bytes kb = of_bytes ~page_bytes (kb * 1024)
let bytes t = t.bytes
let pages t ~page_bytes = t.bytes / page_bytes
let covers t ~code_base addr = addr >= code_base && addr - code_base < t.bytes

let coverage t ~graph ~profile ~layout =
  let total = Wp_cfg.Profile.dynamic_instrs profile graph in
  if total = 0 then 0.0
  else begin
    let base = Wp_layout.Binary_layout.base layout in
    let covered = ref 0 in
    Array.iter
      (fun id ->
        (* A block counts as covered when it starts inside the area;
           blocks straddling the boundary are a one-line effect. *)
        if covers t ~code_base:base (Wp_layout.Binary_layout.block_start layout id)
        then
          covered := !covered + Wp_cfg.Profile.block_dynamic_instrs profile graph id)
      (Wp_layout.Binary_layout.order layout);
    float_of_int !covered /. float_of_int total
  end

let choose ~page_bytes ~max_bytes ~target_coverage ~graph ~profile ~layout =
  if max_bytes <= 0 || max_bytes mod page_bytes <> 0 then
    invalid_arg "Area.choose: max_bytes must be a positive page multiple";
  if target_coverage < 0.0 || target_coverage > 1.0 then
    invalid_arg "Area.choose: target coverage out of [0,1]";
  let rec go bytes =
    if bytes >= max_bytes then { bytes = max_bytes }
    else begin
      let candidate = { bytes } in
      if coverage candidate ~graph ~profile ~layout >= target_coverage then
        candidate
      else go (bytes + page_bytes)
    end
  in
  go page_bytes

let pp ppf t = Format.fprintf ppf "%dKB area" (t.bytes / 1024)
