(** Synthetic data-address generation for loads and stores.

    Each memory instruction carries a locality class
    ({!Wp_isa.Instr.data_locality}); this module turns the class into a
    concrete address deterministically.  The stream depends only on the
    executed instruction sequence and the seed, so every scheme sees an
    identical data-side workload — D-cache behaviour can never
    contaminate the I-cache comparison. *)

type t

val create : seed:int -> t
val base_address : Wp_isa.Addr.t
(** Start of the simulated data segment (0x4000_0000), far from code. *)

val next : t -> Wp_isa.Instr.data_locality -> Wp_isa.Addr.t
(** @raise Invalid_argument on [No_data]. *)
