type scheme =
  | Baseline
  | Way_placement of { area_bytes : int }
  | Way_memoization
  | Way_prediction
  | Filter_cache of { l0_bytes : int }

type t = {
  icache : Wp_cache.Geometry.t;
  dcache : Wp_cache.Geometry.t;
  replacement : Wp_cache.Replacement.t;
  itlb_entries : int;
  dtlb_entries : int;
  page_bytes : int;
  memory_latency : int;
  tlb_walk_latency : int;
  btb_entries : int;
  mispredict_penalty : int;
  energy : Wp_energy.Params.t;
  scheme : scheme;
  same_line_elision : bool;
  memo_invalidation : Wp_cache.Way_memo.invalidation;
  leakage_enabled : bool;
  drowsy_window_fetches : int option;
}

let xscale scheme =
  let cache =
    Wp_cache.Geometry.make ~size_bytes:(32 * 1024) ~assoc:32 ~line_bytes:32
  in
  {
    icache = cache;
    dcache = cache;
    replacement = Wp_cache.Replacement.Round_robin;
    itlb_entries = 32;
    dtlb_entries = 32;
    page_bytes = 1024;
    memory_latency = 50;
    tlb_walk_latency = 50;
    btb_entries = 128;
    mispredict_penalty = 4;
    energy = Wp_energy.Params.default;
    scheme;
    same_line_elision = true;
    memo_invalidation = Wp_cache.Way_memo.Flash_clear;
    leakage_enabled = false;
    drowsy_window_fetches = None;
  }

let with_icache t icache = { t with icache }
let with_replacement t replacement = { t with replacement }
let with_scheme t scheme = { t with scheme }
let with_energy t energy = { t with energy }
let with_same_line_elision t same_line_elision = { t with same_line_elision }
let with_memo_invalidation t memo_invalidation = { t with memo_invalidation }
let with_leakage t leakage_enabled = { t with leakage_enabled }
let with_drowsy t drowsy_window_fetches = { t with drowsy_window_fetches }

let validate t =
  if t.itlb_entries <= 0 || t.dtlb_entries <= 0 then Error "TLBs need entries"
  else if not (Wp_isa.Addr.is_power_of_two t.page_bytes) then
    Error "page size must be a power of two"
  else if t.memory_latency < 1 || t.tlb_walk_latency < 0 then
    Error "bad latencies"
  else begin
    let scheme_ok =
      match t.scheme with
      | Baseline | Way_memoization | Way_prediction -> Ok ()
      | Filter_cache { l0_bytes } ->
          if
            Wp_isa.Addr.is_power_of_two l0_bytes
            && l0_bytes >= t.icache.Wp_cache.Geometry.line_bytes
            && l0_bytes < t.icache.Wp_cache.Geometry.size_bytes
          then Ok ()
          else Error "filter-cache L0 must be a power of two smaller than L1"
      | Way_placement { area_bytes } ->
          if area_bytes <= 0 then Error "way-placement area must be positive"
          else if area_bytes mod t.page_bytes <> 0 then
            Error
              (Printf.sprintf
                 "way-placement area (%d B) must be a multiple of the page size (%d B)"
                 area_bytes t.page_bytes)
          else Ok ()
    in
    match scheme_ok with
    | Error _ as e -> e
    | Ok () -> begin
        match t.drowsy_window_fetches with
        | None -> Ok ()
        | Some w ->
            if w <= 0 then Error "drowsy window must be positive"
            else if not t.leakage_enabled then
              Error "drowsy lines need leakage accounting enabled"
            else begin
              match t.scheme with
              | Baseline | Way_placement _ -> Ok ()
              | Way_memoization | Way_prediction | Filter_cache _ ->
                  Error "drowsy lines are supported for baseline and way-placement"
            end
      end
  end

let scheme_name = function
  | Baseline -> "baseline"
  | Way_placement { area_bytes } ->
      Printf.sprintf "way-placement(%dKB)" (area_bytes / 1024)
  | Way_memoization -> "way-memoization"
  | Way_prediction -> "way-prediction"
  | Filter_cache { l0_bytes } ->
      Printf.sprintf "filter-cache(%dB)" l0_bytes

let pp ppf t =
  Format.fprintf ppf
    "@[<v>scheme: %s@,i-cache: %a@,d-cache: %a@,replacement: %s@,\
     i-tlb/d-tlb: %d/%d entries, %d B pages@,memory: %d cycles@]"
    (scheme_name t.scheme) Wp_cache.Geometry.pp t.icache Wp_cache.Geometry.pp
    t.dcache
    (Wp_cache.Replacement.to_string t.replacement)
    t.itlb_entries t.dtlb_entries t.page_bytes t.memory_latency
