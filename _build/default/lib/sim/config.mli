(** Machine configuration (paper Table 1 plus the scheme under test). *)

type scheme =
  | Baseline  (** unmodified instruction cache *)
  | Way_placement of { area_bytes : int }
      (** the paper's scheme, with the OS-chosen way-placement area *)
  | Way_memoization  (** the hardware comparator, Ma et al. [12] *)
  | Way_prediction
      (** MRU way prediction, Inoue et al. [6] — related work the paper
          contrasts with: mispredictions need recovery logic and cost a
          cycle *)
  | Filter_cache of { l0_bytes : int }
      (** a tiny direct-mapped L0 in front of the I-cache, Kin et
          al. [11] — saves energy but adds fetch latency on L0 misses *)

type t = {
  icache : Wp_cache.Geometry.t;
  dcache : Wp_cache.Geometry.t;
  replacement : Wp_cache.Replacement.t;
  itlb_entries : int;
  dtlb_entries : int;
  page_bytes : int;
  memory_latency : int;  (** cycles for a line refill *)
  tlb_walk_latency : int;  (** cycles for a hardware page walk *)
  btb_entries : int;
  mispredict_penalty : int;
  energy : Wp_energy.Params.t;
  scheme : scheme;
  same_line_elision : bool;
      (** tag-check elision for sequential same-line fetches — a
          property of the XScale fetch path shared by every scheme,
          including the baseline (ablation switch) *)
  memo_invalidation : Wp_cache.Way_memo.invalidation;
      (** link-invalidation policy for the way-memoization comparator;
          {!Wp_cache.Way_memo.Flash_clear} is the implementable
          hardware, {!Wp_cache.Way_memo.Precise} the idealised ablation *)
  leakage_enabled : bool;
      (** account I-cache leakage energy (off by default: the paper's
          evaluation is dynamic-energy only; Section 7 discusses
          combining way-placement with leakage schemes) *)
  drowsy_window_fetches : int option;
      (** put lines to sleep after this many fetches without a touch
          (Flautner et al.); requires [leakage_enabled], supported for
          the baseline and way-placement schemes *)
}

val xscale : scheme -> t
(** The paper's baseline machine: 32 KB 32-way 32 B I- and D-caches,
    32-entry fully associative TLBs, 1 KB pages, 50-cycle memory. *)

val with_icache : t -> Wp_cache.Geometry.t -> t
val with_replacement : t -> Wp_cache.Replacement.t -> t
val with_scheme : t -> scheme -> t
val with_energy : t -> Wp_energy.Params.t -> t
val with_same_line_elision : t -> bool -> t
val with_memo_invalidation : t -> Wp_cache.Way_memo.invalidation -> t
val with_leakage : t -> bool -> t
val with_drowsy : t -> int option -> t

val validate : t -> (unit, string) result
(** Way-placement area must be positive and a multiple of the page
    size (paper Section 4.1); cache and TLB parameters must be
    self-consistent. *)

val scheme_name : scheme -> string
val pp : Format.formatter -> t -> unit
