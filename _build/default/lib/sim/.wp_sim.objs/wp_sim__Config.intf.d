lib/sim/config.mli: Format Wp_cache Wp_energy
