lib/sim/simulator.mli: Config Stats Wp_isa Wp_layout Wp_workloads
