lib/sim/runner.mli: Config Stats Wp_cfg Wp_layout Wp_workloads
