lib/sim/data_stream.ml: Wp_isa Wp_workloads
