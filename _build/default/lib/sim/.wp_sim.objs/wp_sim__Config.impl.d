lib/sim/config.ml: Format Printf Wp_cache Wp_energy Wp_isa
