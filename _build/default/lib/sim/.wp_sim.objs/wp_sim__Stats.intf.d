lib/sim/stats.mli: Format Wp_energy
