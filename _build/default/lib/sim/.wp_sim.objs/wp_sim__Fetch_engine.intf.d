lib/sim/fetch_engine.mli: Config Stats Wp_isa
