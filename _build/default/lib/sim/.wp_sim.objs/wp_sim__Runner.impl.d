lib/sim/runner.ml: Config List Simulator Stats Wp_cfg Wp_energy Wp_layout Wp_workloads
