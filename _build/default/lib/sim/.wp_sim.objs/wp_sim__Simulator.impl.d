lib/sim/simulator.ml: Array Basic_block Config Data_stream Dmem Fetch_engine Icfg Stats Wp_cfg Wp_energy Wp_isa Wp_layout Wp_pipeline Wp_workloads
