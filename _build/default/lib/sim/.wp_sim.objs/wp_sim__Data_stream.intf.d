lib/sim/data_stream.mli: Wp_isa
