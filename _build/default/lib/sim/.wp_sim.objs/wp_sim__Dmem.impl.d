lib/sim/dmem.ml: Config Stats Wp_cache Wp_energy Wp_tlb
