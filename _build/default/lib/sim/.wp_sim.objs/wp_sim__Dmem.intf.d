lib/sim/dmem.mli: Config Stats Wp_isa
