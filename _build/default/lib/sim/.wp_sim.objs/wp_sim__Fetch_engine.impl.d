lib/sim/fetch_engine.ml: Account Cam_cache Cam_energy Config Drowsy Filter_cache Geometry Option Params Stats Way_memo Way_predict Wp_cache Wp_energy Wp_isa Wp_tlb
