lib/sim/stats.ml: Format Wp_energy
