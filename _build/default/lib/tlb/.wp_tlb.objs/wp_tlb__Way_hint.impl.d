lib/tlb/way_hint.ml:
