lib/tlb/way_hint.mli:
