lib/tlb/tlb.mli: Format Wp_isa
