lib/tlb/tlb.ml: Array Format Wp_isa
