(** The single way-hint bit (paper Section 4.1).

    The I-TLB and the instruction cache are accessed in parallel, so
    whether the fetch targets the way-placement area is not known until
    the access has happened.  A single bit, read before the cache,
    records whether the {e previous} fetch was to the way-placement
    area and predicts that the next one is too.

    The two mispredict scenarios:
    - hint says "not way-placed" but the page is: a full-width access
      is performed — an energy-saving opportunity is merely missed;
    - hint says "way-placed" but the page is not: the single-way access
      was useless, and a second, full access must be made — one cycle
      of penalty plus the extra access energy. *)

type t

type verdict =
  | Correct_way_placed  (** predicted and actual both way-placed *)
  | Correct_normal
  | Missed_saving  (** predicted normal, was way-placed *)
  | Needs_reaccess  (** predicted way-placed, was normal: 1-cycle penalty *)

val create : unit -> t
(** Initial prediction is "not way-placed". *)

val predict : t -> bool
(** True = next access predicted to hit the way-placement area. *)

val resolve : t -> actual:bool -> verdict
(** Compare the prediction with the way-placement bit read from the
    I-TLB, update the hint to [actual], and classify the outcome. *)

val reset : t -> unit
