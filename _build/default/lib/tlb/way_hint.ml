type t = { mutable hint : bool }

type verdict =
  | Correct_way_placed
  | Correct_normal
  | Missed_saving
  | Needs_reaccess

let create () = { hint = false }
let predict t = t.hint

let resolve t ~actual =
  let predicted = t.hint in
  t.hint <- actual;
  match (predicted, actual) with
  | true, true -> Correct_way_placed
  | false, false -> Correct_normal
  | false, true -> Missed_saving
  | true, false -> Needs_reaccess

let reset t = t.hint <- false
