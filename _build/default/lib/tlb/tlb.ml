type t = {
  entries : int;
  page_bytes : int;
  pages : int array;  (** page base address per entry *)
  valid : bool array;
  wp_bits : bool array;
  mutable rr_next : int;
}

type lookup = { hit : bool; way_placed : bool }

let create ~entries ~page_bytes =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  if not (Wp_isa.Addr.is_power_of_two page_bytes) then
    invalid_arg "Tlb.create: page size must be a power of two";
  {
    entries;
    page_bytes;
    pages = Array.make entries 0;
    valid = Array.make entries false;
    wp_bits = Array.make entries false;
    rr_next = 0;
  }

let entries t = t.entries
let page_bytes t = t.page_bytes
let page_base t addr = Wp_isa.Addr.align_down addr ~alignment:t.page_bytes

let find t page =
  let rec go i =
    if i >= t.entries then None
    else if t.valid.(i) && t.pages.(i) = page then Some i
    else go (i + 1)
  in
  go 0

let lookup t addr ~wp_bit_of_page =
  let page = page_base t addr in
  match find t page with
  | Some i -> { hit = true; way_placed = t.wp_bits.(i) }
  | None ->
      let victim =
        let rec invalid i =
          if i >= t.entries then None
          else if not t.valid.(i) then Some i
          else invalid (i + 1)
        in
        match invalid 0 with
        | Some i -> i
        | None ->
            let i = t.rr_next in
            t.rr_next <- (i + 1) mod t.entries;
            i
      in
      let wp = wp_bit_of_page page in
      t.pages.(victim) <- page;
      t.valid.(victim) <- true;
      t.wp_bits.(victim) <- wp;
      { hit = false; way_placed = wp }

let flush t =
  Array.fill t.valid 0 t.entries false;
  t.rr_next <- 0

let valid_entries t =
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 t.valid

let pp ppf t =
  Format.fprintf ppf "i-tlb: %d entries, %d B pages, %d valid" t.entries
    t.page_bytes (valid_entries t)
