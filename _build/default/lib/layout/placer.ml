open Wp_cfg

let place graph profile =
  let chains = Chain_builder.build graph profile in
  let sorted = List.sort Chain.compare_by_weight chains in
  let order = List.concat_map (fun (c : Chain.t) -> c.blocks) sorted in
  Array.of_list order

let original graph = Array.copy (Icfg.original_order graph)

let is_admissible graph order =
  let n = Icfg.num_blocks graph in
  if Array.length order <> n then
    Error
      (Printf.sprintf "ordering has %d blocks, graph has %d"
         (Array.length order) n)
  else begin
    let position = Array.make n (-1) in
    let dup = ref None in
    Array.iteri
      (fun pos id ->
        if id < 0 || id >= n then dup := Some (Printf.sprintf "unknown block B%d" id)
        else if position.(id) >= 0 then
          dup := Some (Printf.sprintf "B%d appears twice" id)
        else position.(id) <- pos)
      order;
    match !dup with
    | Some msg -> Error msg
    | None ->
        let violation = ref None in
        for id = 0 to n - 1 do
          match Icfg.fallthrough_succ graph id with
          | Some dst ->
              if position.(dst) <> position.(id) + 1 then
                violation :=
                  Some
                    (Printf.sprintf
                       "fall-through B%d -> B%d broken (positions %d, %d)" id
                       dst position.(id) position.(dst))
          | None -> ()
        done;
        (match !violation with Some msg -> Error msg | None -> Ok ())
  end
