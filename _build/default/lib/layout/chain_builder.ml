open Wp_cfg

(* Each block has at most one outgoing and one incoming fall-through
   edge (enforced by Icfg validation), so the fall-through relation is
   a set of disjoint paths (plus, pathologically, cycles, which we
   break).  A chain is one maximal path. *)
let build graph profile =
  let n = Icfg.num_blocks graph in
  let next = Array.make n (-1) in
  let has_pred = Array.make n false in
  for id = 0 to n - 1 do
    match Icfg.fallthrough_succ graph id with
    | Some dst ->
        next.(id) <- dst;
        has_pred.(dst) <- true
    | None -> ()
  done;
  let claimed = Array.make n false in
  let weight_of id = Profile.block_dynamic_instrs profile graph id in
  let walk head =
    let rec go id acc_blocks acc_weight =
      if claimed.(id) then (List.rev acc_blocks, acc_weight)
      else begin
        claimed.(id) <- true;
        let acc_blocks = id :: acc_blocks and acc_weight = acc_weight + weight_of id in
        let nxt = next.(id) in
        if nxt = -1 then (List.rev acc_blocks, acc_weight)
        else go nxt acc_blocks acc_weight
      end
    in
    let blocks, weight = go head [] 0 in
    Chain.make ~blocks ~weight
  in
  let chains = ref [] in
  (* True heads first: blocks that nothing falls through into. *)
  for id = 0 to n - 1 do
    if (not has_pred.(id)) && not claimed.(id) then
      chains := walk id :: !chains
  done;
  (* Any block still unclaimed sits on a fall-through cycle; break the
     cycle at the smallest unclaimed id. *)
  for id = 0 to n - 1 do
    if not claimed.(id) then chains := walk id :: !chains
  done;
  List.rev !chains

let chain_of_block chains id =
  List.find (fun (c : Chain.t) -> List.mem id c.blocks) chains
