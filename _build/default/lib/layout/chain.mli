(** Chains of basic blocks (paper Section 3).

    A chain is an ordered run of blocks whose relative order the final
    binary must preserve: consecutive blocks in a chain are linked by a
    fall-through edge (which includes the continuation block of every
    call site).  Blocks with no such constraint form singleton
    chains. *)

type t = {
  blocks : Wp_cfg.Basic_block.id list;  (** non-empty, layout order *)
  weight : int;  (** sum of dynamic instruction counts of the blocks *)
}

val make : blocks:Wp_cfg.Basic_block.id list -> weight:int -> t
(** @raise Invalid_argument on an empty block list or negative weight. *)

val singleton : Wp_cfg.Basic_block.id -> weight:int -> t
val length : t -> int
val first : t -> Wp_cfg.Basic_block.id
val compare_by_weight : t -> t -> int
(** Heaviest first; ties broken by first block id so the placement is
    deterministic. *)

val pp : Format.formatter -> t -> unit
