(** Weight-ordered chain placement (paper Section 3, second stage).

    Chains are ordered by descending weight — heaviest first — and
    concatenated into one block ordering for the whole binary, so the
    most frequently executed code lands at the start of the binary
    where the way-placement area will cover it.  Crucially, a single
    layout serves {e every} way-placement area size: shrinking the area
    just uncovers the coldest prefix blocks, with no recompilation. *)

val place : Wp_cfg.Icfg.t -> Wp_cfg.Profile.t -> Wp_cfg.Basic_block.id array
(** The way-placement block ordering: every block exactly once,
    chain-internal (fall-through / call-pair) order preserved, chains
    sorted heaviest-first. *)

val original : Wp_cfg.Icfg.t -> Wp_cfg.Basic_block.id array
(** The unmodified compiler-emitted ordering, used by the baseline and
    the way-memoization comparator. *)

val is_admissible :
  Wp_cfg.Icfg.t -> Wp_cfg.Basic_block.id array -> (unit, string) result
(** Checks that an ordering is a permutation of all blocks and that
    every fall-through edge's destination immediately follows its
    source — the correctness condition any link-time reordering must
    meet. *)
