(** The final binary image: every instruction of the laid-out program
    encoded to bytes, with control-transfer displacements resolved
    against the layout's concrete addresses — what the link-time
    rewriter actually writes out.

    Transfers encode the {e taken} target (branch/jump) or the callee
    entry (call); plain instructions encode their data-locality
    class. *)

val emit : Wp_cfg.Icfg.t -> Binary_layout.t -> bytes
(** The whole text section, [Binary_layout.code_size_bytes] long,
    starting at the layout's base address. *)

val decode_at :
  Wp_cfg.Icfg.t ->
  Binary_layout.t ->
  bytes ->
  Wp_isa.Addr.t ->
  (Wp_isa.Instr.t * Wp_isa.Addr.t option, string) result
(** Decode the instruction word at a code address of an emitted image
    (for tests and inspection). *)
