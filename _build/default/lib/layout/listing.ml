open Wp_cfg

let label graph id =
  let block = Icfg.block graph id in
  let f = Icfg.func graph block.Basic_block.func in
  Printf.sprintf "<%s:B%d>" f.Func.name id

(* The target a control instruction transfers to, as a label. *)
let target_label graph id =
  let block = Icfg.block graph id in
  match Basic_block.terminator block with
  | Wp_isa.Opcode.Branch | Wp_isa.Opcode.Jump -> begin
      match Icfg.taken_succ graph id with
      | Some t -> Some (label graph t)
      | None -> None
    end
  | Wp_isa.Opcode.Call -> begin
      match Icfg.call_target graph id with
      | Some t -> Some (label graph t)
      | None -> None
    end
  | Wp_isa.Opcode.Return | Wp_isa.Opcode.Alu _ | Mac | Load | Store | Nop ->
      None

let pp_block ppf ~graph ~layout id =
  let block = Icfg.block graph id in
  Format.fprintf ppf "%a %s:@." Wp_isa.Addr.pp
    (Binary_layout.block_start layout id)
    (label graph id);
  let n = Array.length block.Basic_block.instrs in
  for i = 0 to n - 1 do
    let instr = block.Basic_block.instrs.(i) in
    let addr = Binary_layout.instr_addr layout id i in
    let target =
      if i = n - 1 then target_label graph id else None
    in
    match target with
    | Some t -> Format.fprintf ppf "%a:   %a %s@." Wp_isa.Addr.pp addr Wp_isa.Instr.pp instr t
    | None -> Format.fprintf ppf "%a:   %a@." Wp_isa.Addr.pp addr Wp_isa.Instr.pp instr
  done

let pp ?limit_blocks ppf ~graph ~layout =
  let order = Binary_layout.order layout in
  let n = Array.length order in
  let shown = match limit_blocks with Some l -> min l n | None -> n in
  for k = 0 to shown - 1 do
    pp_block ppf ~graph ~layout order.(k);
    if k < shown - 1 then Format.pp_print_newline ppf ()
  done;
  if shown < n then
    Format.fprintf ppf "... (%d more blocks elided)@." (n - shown)

let to_string ?limit_blocks ~graph ~layout () =
  Format.asprintf "%a" (fun ppf () -> pp ?limit_blocks ppf ~graph ~layout) ()
