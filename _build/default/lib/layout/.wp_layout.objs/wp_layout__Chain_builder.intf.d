lib/layout/chain_builder.mli: Chain Wp_cfg
