lib/layout/listing.mli: Binary_layout Format Wp_cfg
