lib/layout/binary_layout.ml: Array Basic_block Format Icfg Placer Printf Wp_cfg Wp_isa
