lib/layout/chain.ml: Basic_block Format List Wp_cfg
