lib/layout/placer.mli: Wp_cfg
