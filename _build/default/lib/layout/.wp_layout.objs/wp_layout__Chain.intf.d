lib/layout/chain.mli: Format Wp_cfg
