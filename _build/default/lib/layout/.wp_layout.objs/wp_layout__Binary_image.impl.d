lib/layout/binary_image.ml: Array Basic_block Binary_layout Bytes Icfg Printf Wp_cfg Wp_isa
