lib/layout/listing.ml: Array Basic_block Binary_layout Format Func Icfg Printf Wp_cfg Wp_isa
