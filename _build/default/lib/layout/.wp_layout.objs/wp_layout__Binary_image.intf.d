lib/layout/binary_image.mli: Binary_layout Wp_cfg Wp_isa
