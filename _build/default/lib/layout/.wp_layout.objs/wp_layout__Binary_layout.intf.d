lib/layout/binary_layout.mli: Format Wp_cfg Wp_isa
