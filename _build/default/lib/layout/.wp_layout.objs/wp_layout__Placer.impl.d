lib/layout/placer.ml: Array Chain Chain_builder Icfg List Printf Wp_cfg
