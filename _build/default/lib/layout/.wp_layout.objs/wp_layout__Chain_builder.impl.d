lib/layout/chain_builder.ml: Array Chain Icfg List Profile Wp_cfg
