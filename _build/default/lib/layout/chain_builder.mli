(** Chain construction (paper Section 3, first stage).

    Blocks connected by fall-through edges — including call/return
    site pairs, whose continuation is a fall-through edge of the call
    block — are linked into chains whose internal order the placer
    must respect.  All remaining blocks become singleton chains. *)

val build : Wp_cfg.Icfg.t -> Wp_cfg.Profile.t -> Chain.t list
(** Chains covering every block of the graph exactly once, each
    weighted with the sum of its blocks' dynamic instruction counts
    ([exec count * static size]).  The relative order of the returned
    list is unspecified (the placer sorts it).

    Fall-through cycles cannot arise from well-formed code generation
    (a cycle would need a block that is both before and after another),
    but if one is present it is broken at the block with the smallest
    id, so the function always terminates and covers all blocks. *)

val chain_of_block :
  Chain.t list -> Wp_cfg.Basic_block.id -> Chain.t
(** Find the chain containing a block.
    @raise Not_found if absent. *)
