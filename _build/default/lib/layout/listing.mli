(** Textual listings of a laid-out binary — the `objdump -d` view of
    the placement, for debugging layouts and for the CLI's `disasm`
    subcommand.

    Blocks appear in layout order; each starts with a label line
    [<function:Bid>] and every instruction is printed at its concrete
    address with its control-flow target resolved back to a label. *)

val pp_block :
  Format.formatter ->
  graph:Wp_cfg.Icfg.t ->
  layout:Binary_layout.t ->
  Wp_cfg.Basic_block.id ->
  unit

val pp :
  ?limit_blocks:int ->
  Format.formatter ->
  graph:Wp_cfg.Icfg.t ->
  layout:Binary_layout.t ->
  unit
(** The whole binary in layout order; [limit_blocks] truncates long
    programs (a trailing note reports the elision). *)

val to_string :
  ?limit_blocks:int ->
  graph:Wp_cfg.Icfg.t ->
  layout:Binary_layout.t ->
  unit ->
  string
