(** Concrete address assignment for a block ordering.

    Blocks are packed back to back from a base address, 4 bytes per
    instruction — the final binary image the fetch engine walks. *)

type t

val of_order :
  Wp_cfg.Icfg.t -> base:Wp_isa.Addr.t -> Wp_cfg.Basic_block.id array -> t
(** Lay the blocks out in the given order starting at [base].
    @raise Invalid_argument if the order is not admissible for the
    graph (see {!Placer.is_admissible}). *)

val base : t -> Wp_isa.Addr.t
val code_size_bytes : t -> int
val block_start : t -> Wp_cfg.Basic_block.id -> Wp_isa.Addr.t
val instr_addr : t -> Wp_cfg.Basic_block.id -> int -> Wp_isa.Addr.t
(** Address of the [i]-th instruction of a block (0-based).
    @raise Invalid_argument if [i] is out of range. *)

val order : t -> Wp_cfg.Basic_block.id array
val position : t -> Wp_cfg.Basic_block.id -> int
(** Index of the block in the layout order. *)

val block_at : t -> Wp_isa.Addr.t -> Wp_cfg.Basic_block.id option
(** Which block covers a code address, if any (binary search). *)

val pp : Format.formatter -> t -> unit
