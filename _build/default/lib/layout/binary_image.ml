open Wp_cfg

let transfer_target graph layout id =
  match Basic_block.terminator (Icfg.block graph id) with
  | Wp_isa.Opcode.Branch | Wp_isa.Opcode.Jump -> begin
      match Icfg.taken_succ graph id with
      | Some t -> Some (Binary_layout.block_start layout t)
      | None -> None
    end
  | Wp_isa.Opcode.Call -> begin
      match Icfg.call_target graph id with
      | Some t -> Some (Binary_layout.block_start layout t)
      | None -> None
    end
  | Wp_isa.Opcode.Return | Wp_isa.Opcode.Alu _ | Mac | Load | Store | Nop ->
      None

let emit graph layout =
  let image = Bytes.create (Binary_layout.code_size_bytes layout) in
  let base = Binary_layout.base layout in
  Array.iter
    (fun id ->
      let block = Icfg.block graph id in
      let instrs = block.Basic_block.instrs in
      let n = Array.length instrs in
      let pc = Binary_layout.block_start layout id in
      let targets = Array.make n None in
      targets.(n - 1) <- transfer_target graph layout id;
      let encoded = Wp_isa.Encode.encode_block instrs ~pc ~targets in
      Bytes.blit encoded 0 image (pc - base) (Bytes.length encoded))
    (Binary_layout.order layout);
  image

let decode_at graph layout image addr =
  ignore graph;
  let base = Binary_layout.base layout in
  if addr < base || addr + 4 > base + Bytes.length image then
    Error (Printf.sprintf "address 0x%x outside the image" addr)
  else if addr land 3 <> 0 then Error "misaligned code address"
  else
    Wp_isa.Encode.decode (Bytes.get_int32_le image (addr - base)) ~pc:addr
